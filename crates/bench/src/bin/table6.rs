//! Regenerates Table 6: tool validation against the GPUVerify-style
//! baseline on the synthesized kernel corpus (DESIGN.md substitution #3).
//!
//! Run with: `cargo run --release -p gpumc-bench --bin table6 [-- --jobs N]`
//!
//! `--bound N` sets the unrolling bound (default 2). `--tier
//! <dev|validation|scale>` selects the catalog tier whose wall clock is
//! checked against its budget (default `dev`). `--json` additionally
//! writes the whole comparison — per-kernel verdicts and solver sizes,
//! per-tool aggregates, the agreement matrix, the incremental-vs-fresh
//! timings, the CNF-simplification pre/post sizes with simplify-on/off
//! solve times, the DPOR-engine explored/pruned counters with
//! wall-clock vs the SAT engine, the parallel-DPOR speedup on the
//! slowest DPOR kernels (skipped and annotated on 1-core hosts), and
//! the tier wall-clock-vs-budget record — to `BENCH_table6.json` in the
//! current directory, for machine consumption.

use std::time::Instant;

use gpumc::{EngineKind, Verifier};
use gpumc_models::ModelKind;
use gpumc_serve::json::Json;
use gpumc_spirv::{emit_spirv, gpuverify_corpus, lower, parse_spirv, Bucket};

fn main() {
    let jobs = gpumc_bench::jobs_from_args();
    let json_out = gpumc_bench::flag_from_args("--json");
    let bound = gpumc_bench::value_from_args::<u32>("--bound").unwrap_or(2);
    let batch = Instant::now();
    let corpus = gpuverify_corpus();
    let compile_fail = corpus
        .iter()
        .filter(|c| c.bucket == Bucket::CompileFails)
        .count();
    let trivial = corpus
        .iter()
        .filter(|c| c.bucket == Bucket::TriviallyRaceFree)
        .count();

    // --- the Dartagnan-style verifier on the verifiable kernels, fanned
    //     out over the worker pool (each kernel is independent).
    let verifiable: Vec<_> = corpus
        .iter()
        .filter(|c| c.bucket == Bucket::Verifiable)
        .collect();
    let verdicts = gpumc::parallel_map_ordered(&verifiable, jobs, |_, case| {
        let kernel = case.kernel.as_ref().expect("verifiable kernels exist");
        let text = emit_spirv(kernel);
        let module = parse_spirv(&text).expect("parses");
        let program = lower(&module, case.grid).expect("lowers");
        let v = Verifier::new(gpumc_models::load_shared(ModelKind::Vulkan)).with_bound(bound);
        let t0 = Instant::now();
        let outcome = v.check_data_races(&program);
        (outcome, t0.elapsed().as_micros())
    });
    let mut gpumc_time = 0u128;
    let mut gpumc_count = 0usize;
    let mut gpumc_racy: Vec<(String, bool)> = Vec::new();
    let mut kernel_rows: Vec<Json> = Vec::new();
    // (index into `verifiable`, µs) for ranking the slowest kernels.
    let mut case_times: Vec<(usize, u128)> = Vec::new();
    for (i, (case, (outcome, us))) in verifiable.iter().zip(verdicts).enumerate() {
        match outcome {
            Ok(o) => {
                gpumc_time += us;
                gpumc_count += 1;
                case_times.push((i, us));
                gpumc_racy.push((case.name.clone(), o.violated));
                kernel_rows.push(Json::Obj(vec![
                    ("name".into(), Json::str(case.name.as_str())),
                    ("racy".into(), Json::Bool(o.violated)),
                    ("time_us".into(), Json::count(us as u64)),
                    ("events".into(), Json::count(o.stats.events as u64)),
                    ("sat_vars".into(), Json::count(o.stats.sat_vars as u64)),
                    (
                        "sat_clauses".into(),
                        Json::count(o.stats.sat_clauses as u64),
                    ),
                ]));
                if let Some(expected) = case.expected_racy {
                    if o.violated != expected {
                        eprintln!(
                            "!! gpumc ground-truth mismatch on {}: got {} expected {expected}",
                            case.name, o.violated
                        );
                    }
                }
            }
            Err(e) => eprintln!("gpumc failed on {}: {e}", case.name),
        }
    }

    // --- the GPUVerify-style baseline on everything it supports
    //     (verifiable + verifier-unsupported kernels). One `analyze`
    //     call runs in nanoseconds, far below the µs clock granularity a
    //     per-call `elapsed().as_micros()` would truncate to zero (the
    //     old "177 tests in 4 µs" artifact) — so time a repeat loop per
    //     kernel and keep nanosecond totals.
    const GV_REPEAT: u32 = 256;
    let mut gv_time_ns = 0u128;
    let mut gv_count = 0usize;
    let mut gv_verdicts: Vec<(String, bool)> = Vec::new();
    for case in corpus
        .iter()
        .filter(|c| matches!(c.bucket, Bucket::Verifiable | Bucket::UnsupportedByVerifier))
    {
        let kernel = case.kernel.as_ref().expect("kernels exist");
        let t0 = Instant::now();
        for _ in 0..GV_REPEAT {
            std::hint::black_box(gpumc_gpuverify::analyze(
                std::hint::black_box(kernel),
                case.grid,
            ));
        }
        gv_time_ns += t0.elapsed().as_nanos() / u128::from(GV_REPEAT);
        gv_count += 1;
        let verdict = gpumc_gpuverify::analyze(kernel, case.grid);
        gv_verdicts.push((case.name.clone(), verdict.is_failure()));
    }

    // --- agreement on the commonly-supported kernels, gated against the
    //     catalogued expected-divergence table: every disagreement must
    //     be a documented baseline weakness (with the documented
    //     direction), and every documented weakness must still
    //     reproduce. A loose "N/M agree" count would let a new
    //     regression hide behind a fixed false positive.
    let mut agree = 0usize;
    let mut disagreements = Vec::new();
    for (name, ours) in &gpumc_racy {
        if let Some((_, theirs)) = gv_verdicts.iter().find(|(n, _)| n == name) {
            if ours == theirs {
                agree += 1;
            } else {
                disagreements.push((name.clone(), *ours, *theirs));
            }
        }
    }
    let unexpected: Vec<String> = disagreements
        .iter()
        .filter(|(name, ours, theirs)| {
            !matches!(gpumc_gpuverify::expected_divergence(name),
                Some(d) if d.gpumc_racy == *ours && d.gpuverify_racy == *theirs)
        })
        .map(|(name, _, _)| name.clone())
        .collect();
    let missing: Vec<&str> = gpumc_gpuverify::expected_divergences()
        .iter()
        .filter(|d| !disagreements.iter().any(|(n, _, _)| n == d.name))
        .map(|d| d.name)
        .collect();

    println!("Table 6: comparing gpumc and the GPUVerify-style baseline for DRF");
    println!("pipeline: {} kernels total", corpus.len());
    println!("  compilation fails:        {compile_fail}");
    println!("  trivially race-free:      {trivial}");
    println!();
    println!("  {:12} {:>7} {:>15}", "Tool", "#Tests", "Time/Test (ms)");
    println!(
        "  {:12} {:>7} {:>15.1}",
        "gpumc",
        gpumc_count,
        gpumc_time as f64 / 1000.0 / gpumc_count.max(1) as f64
    );
    println!(
        "  {:12} {:>7} {:>15.4}",
        "gpuverify",
        gv_count,
        gv_time_ns as f64 / 1e6 / gv_count.max(1) as f64
    );
    println!();
    println!(
        "agreement on commonly-supported kernels: {agree}/{}",
        gpumc_racy.len()
    );
    for (name, ours, theirs) in &disagreements {
        let annotation = match gpumc_gpuverify::expected_divergence(name) {
            Some(d) if d.gpumc_racy == *ours && d.gpuverify_racy == *theirs => "expected",
            _ => "UNEXPECTED",
        };
        println!(
            "  disagreement: {name}: gpumc={} gpuverify={}  [{annotation}]",
            if *ours { "race" } else { "race-free" },
            if *theirs { "race" } else { "race-free" },
        );
    }
    if unexpected.is_empty() && missing.is_empty() {
        println!(
            "agreement gate: exact expected-divergence set matched ({} kernels)",
            gpumc_gpuverify::expected_divergences().len()
        );
    } else {
        for name in &unexpected {
            println!("!! unexpected disagreement: {name}");
        }
        for name in &missing {
            println!("!! catalogued disagreement no longer reproduces: {name}");
        }
    }

    // --- the incremental-session win: all three properties (assertion,
    //     liveness, data races) of every verifiable kernel, answered once
    //     from one incremental encoding and once from three fresh
    //     encodings. Verdicts must agree; per-query solver deltas go to
    //     stderr.
    let mut inc_us = 0u128;
    let mut fresh_us = 0u128;
    for case in &verifiable {
        let kernel = case.kernel.as_ref().expect("verifiable kernels exist");
        let text = emit_spirv(kernel);
        let module = parse_spirv(&text).expect("parses");
        let program = lower(&module, case.grid).expect("lowers");
        let v = Verifier::new(gpumc_models::load_shared(ModelKind::Vulkan)).with_bound(bound);
        let t0 = Instant::now();
        let inc = v.check_all(&program);
        let inc_elapsed = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let fresh = v.clone().with_incremental(false).check_all(&program);
        let fresh_elapsed = t0.elapsed().as_micros();
        match (inc, fresh) {
            (Ok(i), Ok(f)) => {
                inc_us += inc_elapsed;
                fresh_us += fresh_elapsed;
                eprintln!(
                    "  {} incremental {:.1} ms vs fresh {:.1} ms",
                    case.name,
                    inc_elapsed as f64 / 1000.0,
                    fresh_elapsed as f64 / 1000.0
                );
                eprint!("{}", i.render_query_stats());
                if i.assertion.reachable != f.assertion.reachable
                    || i.liveness.violated != f.liveness.violated
                    || i.data_races.as_ref().map(|d| d.violated)
                        != f.data_races.as_ref().map(|d| d.violated)
                {
                    eprintln!("!! incremental/fresh verdict mismatch on {}", case.name);
                }
            }
            (i, f) => {
                if let Err(e) = i {
                    eprintln!("incremental check_all failed on {}: {e}", case.name);
                }
                if let Err(e) = f {
                    eprintln!("fresh check_all failed on {}: {e}", case.name);
                }
            }
        }
    }
    println!();
    println!("three-property verification (assertion + liveness + drf) per kernel:");
    println!(
        "  incremental session: {:>8.1} ms   three fresh encodings: {:>8.1} ms   speedup {:.2}x",
        inc_us as f64 / 1000.0,
        fresh_us as f64 / 1000.0,
        if inc_us > 0 {
            fresh_us as f64 / inc_us as f64
        } else {
            1.0
        }
    );

    // --- the CNF-simplification win: the same three-property check of
    //     every verifiable kernel, once with SatELite-style simplification
    //     (the default) and once without. Aggregates the pre/post CNF
    //     sizes the simplifier reports and the solve wall time each way.
    let simp_runs = gpumc::parallel_map_ordered(&verifiable, jobs, |_, case| {
        let kernel = case.kernel.as_ref().expect("verifiable kernels exist");
        let text = emit_spirv(kernel);
        let module = parse_spirv(&text).expect("parses");
        let program = lower(&module, case.grid).expect("lowers");
        let v = Verifier::new(gpumc_models::load_shared(ModelKind::Vulkan)).with_bound(bound);
        let t0 = Instant::now();
        let on = v.clone().with_simplify(true).check_all(&program);
        let on_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let off = v.with_simplify(false).check_all(&program);
        let off_us = t0.elapsed().as_micros();
        (on, on_us, off, off_us)
    });
    let mut clauses_before = 0u64;
    let mut clauses_after = 0u64;
    let mut vars_before = 0u64;
    let mut vars_after = 0u64;
    let mut literals_before = 0u64;
    let mut literals_after = 0u64;
    let mut simplify_us = 0u64;
    let mut on_solve_us = 0u64;
    let mut off_solve_us = 0u64;
    let mut on_wall_us = 0u128;
    let mut off_wall_us = 0u128;
    for (case, (on, on_us, off, off_us)) in verifiable.iter().zip(simp_runs) {
        match (on, off) {
            (Ok(on), Ok(off)) => {
                let sp = on.simplify.expect("simplify stats recorded when on");
                clauses_before += sp.clauses_before as u64;
                clauses_after += sp.clauses_after as u64;
                vars_before += sp.vars_before as u64;
                vars_after += sp.vars_after as u64;
                literals_before += sp.literals_before as u64;
                literals_after += sp.literals_after as u64;
                simplify_us += sp.time_us;
                on_solve_us += on.phases.solve_us;
                off_solve_us += off.phases.solve_us;
                on_wall_us += on_us;
                off_wall_us += off_us;
                if on.assertion.reachable != off.assertion.reachable
                    || on.liveness.violated != off.liveness.violated
                    || on.data_races.as_ref().map(|d| d.violated)
                        != off.data_races.as_ref().map(|d| d.violated)
                {
                    eprintln!("!! simplify on/off verdict mismatch on {}", case.name);
                }
            }
            (on, off) => {
                if let Err(e) = on {
                    eprintln!("simplified check_all failed on {}: {e}", case.name);
                }
                if let Err(e) = off {
                    eprintln!("unsimplified check_all failed on {}: {e}", case.name);
                }
            }
        }
    }
    let reduction = |before: u64, after: u64| {
        if before == 0 {
            0.0
        } else {
            100.0 * (before.saturating_sub(after)) as f64 / before as f64
        }
    };
    println!();
    println!("CNF simplification at bound {bound} (suite aggregate):");
    println!(
        "  clauses  {clauses_before:>8} -> {clauses_after:>8}  (-{:.1}%)",
        reduction(clauses_before, clauses_after)
    );
    println!(
        "  vars     {vars_before:>8} -> {vars_after:>8}  (-{:.1}%)",
        reduction(vars_before, vars_after)
    );
    println!(
        "  literals {literals_before:>8} -> {literals_after:>8}  (-{:.1}%)",
        reduction(literals_before, literals_after)
    );
    println!(
        "  solve time: simplify ON {:>8.1} ms  OFF {:>8.1} ms  (simplifier itself {:.1} ms)",
        on_solve_us as f64 / 1000.0,
        off_solve_us as f64 / 1000.0,
        simplify_us as f64 / 1000.0
    );

    // --- the portfolio-solve comparison: the slowest verifiable kernels
    //     (ranked by the measured sequential DRF time above), checked
    //     once sequentially and once racing diversified solvers with
    //     learnt-clause sharing. On a single-core host the racers
    //     time-slice, so any win must come from a diversified
    //     configuration reaching the answer in fewer total conflicts —
    //     record `host_parallelism` so readers can interpret the ratio.
    const PORTFOLIO_WORKERS: u32 = 2;
    const PORTFOLIO_SLOWEST: usize = 8;
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut ranked = case_times.clone();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let slowest: Vec<usize> = ranked
        .iter()
        .take(PORTFOLIO_SLOWEST)
        .map(|&(i, _)| i)
        .collect();
    // A sequential-vs-parallel wall-clock ratio is only a measurement
    // when the racers actually run in parallel; on a one-core host it
    // records time-slicing overhead as if it were a result, so the
    // comparison is skipped (and annotated as such in the JSON).
    let run_portfolio = host_parallelism > 1;
    let mut seq_total_us = 0u128;
    let mut par_total_us = 0u128;
    let mut pstats = gpumc::gpumc_sat::PortfolioStats::default();
    let mut portfolio_rows: Vec<Json> = Vec::new();
    println!();
    if run_portfolio {
        println!(
            "portfolio({PORTFOLIO_WORKERS}) vs sequential on the {} slowest kernels \
             (host parallelism {host_parallelism}):",
            slowest.len()
        );
    } else {
        println!(
            "portfolio({PORTFOLIO_WORKERS}) vs sequential: skipped — host parallelism is 1, \
             so the racers would time-slice one core and the wall-clock ratio \
             would measure scheduling overhead, not solver speedup"
        );
    }
    for &i in slowest.iter().filter(|_| run_portfolio) {
        let case = verifiable[i];
        let kernel = case.kernel.as_ref().expect("verifiable kernels exist");
        let text = emit_spirv(kernel);
        let module = parse_spirv(&text).expect("parses");
        let program = lower(&module, case.grid).expect("lowers");
        let v = Verifier::new(gpumc_models::load_shared(ModelKind::Vulkan)).with_bound(bound);
        let t0 = Instant::now();
        let seq = v.clone().check_all(&program);
        let seq_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let par = v
            .with_parallel(gpumc::gpumc_sat::ParallelPolicy::Portfolio(
                PORTFOLIO_WORKERS,
            ))
            .check_all(&program);
        let par_us = t0.elapsed().as_micros();
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                if s.assertion.reachable != p.assertion.reachable
                    || s.liveness.violated != p.liveness.violated
                    || s.data_races.as_ref().map(|d| d.violated)
                        != p.data_races.as_ref().map(|d| d.violated)
                {
                    eprintln!("!! portfolio/sequential verdict mismatch on {}", case.name);
                }
                seq_total_us += seq_us;
                par_total_us += par_us;
                let ps = p.portfolio.unwrap_or_default();
                pstats.absorb(&ps);
                println!(
                    "  {:24} sequential {:>8.1} ms   portfolio {:>8.1} ms   ({:>5.2}x, \
                     winner {}, {} shared)",
                    case.name,
                    seq_us as f64 / 1000.0,
                    par_us as f64 / 1000.0,
                    if par_us > 0 {
                        seq_us as f64 / par_us as f64
                    } else {
                        1.0
                    },
                    ps.winner.map_or("-".to_string(), |w| w.to_string()),
                    ps.imported,
                );
                portfolio_rows.push(Json::Obj(vec![
                    ("name".into(), Json::str(case.name.as_str())),
                    ("sequential_us".into(), Json::count(seq_us as u64)),
                    ("portfolio_us".into(), Json::count(par_us as u64)),
                    (
                        "winner".into(),
                        ps.winner.map_or(Json::Null, |w| Json::count(u64::from(w))),
                    ),
                    ("exported".into(), Json::count(ps.exported)),
                    ("imported".into(), Json::count(ps.imported)),
                    ("cube_fallback".into(), Json::Bool(ps.cube_fallback)),
                ]));
            }
            (s, p) => {
                if let Err(e) = s {
                    eprintln!("sequential check_all failed on {}: {e}", case.name);
                }
                if let Err(e) = p {
                    eprintln!("portfolio check_all failed on {}: {e}", case.name);
                }
            }
        }
    }
    if run_portfolio {
        println!(
            "  total: sequential {:>8.1} ms   portfolio {:>8.1} ms   speedup {:.2}x   \
             ({} clauses exported, {} imported)",
            seq_total_us as f64 / 1000.0,
            par_total_us as f64 / 1000.0,
            if par_total_us > 0 {
                seq_total_us as f64 / par_total_us as f64
            } else {
                1.0
            },
            pstats.exported,
            pstats.imported,
        );
    }

    // --- the DPOR-engine comparison: the same DRF check of every
    //     verifiable kernel under the pruned stateless exploration
    //     engine, step-capped so a high-interference kernel answers
    //     Unknown instead of stalling the batch. Records the
    //     explored/pruned counters and the wall-clock against the
    //     sequential SAT total measured above.
    const DPOR_CAP: u64 = 2_000_000;
    let dpor_runs = gpumc::parallel_map_ordered(&verifiable, jobs, |_, case| {
        let kernel = case.kernel.as_ref().expect("verifiable kernels exist");
        let text = emit_spirv(kernel);
        let module = parse_spirv(&text).expect("parses");
        let program = lower(&module, case.grid).expect("lowers");
        let v = Verifier::new(gpumc_models::load_shared(ModelKind::Vulkan))
            .with_bound(bound)
            .with_engine(EngineKind::Dpor)
            .with_enumeration_cap(DPOR_CAP);
        let t0 = Instant::now();
        let outcome = v.check_data_races(&program);
        (outcome, t0.elapsed().as_micros())
    });
    let mut dpor_time = 0u128;
    let mut dpor_answered = 0usize;
    let mut dpor_capped = 0usize;
    let mut dpor_explored = 0u64;
    let mut dpor_consistent = 0u64;
    let mut dpor_pruned = 0u64;
    let mut dpor_mismatches: Vec<String> = Vec::new();
    // (index into `verifiable`, µs) for ranking the slowest DPOR kernels.
    let mut dpor_case_times: Vec<(usize, u128)> = Vec::new();
    for (i, (case, (outcome, us))) in verifiable.iter().zip(dpor_runs).enumerate() {
        match outcome {
            Ok(o) => {
                dpor_time += us;
                dpor_answered += 1;
                dpor_case_times.push((i, us));
                if let Some(st) = o.stats.dpor {
                    dpor_explored += st.explored;
                    dpor_consistent += st.consistent;
                    dpor_pruned += st.pruned_total();
                }
                if let Some((_, sat_racy)) = gpumc_racy.iter().find(|(n, _)| n == &case.name) {
                    if o.violated != *sat_racy {
                        eprintln!("!! dpor/sat DRF verdict mismatch on {}", case.name);
                        dpor_mismatches.push(case.name.clone());
                    }
                }
            }
            Err(gpumc::VerifyError::Unknown(_) | gpumc::VerifyError::TooComplex(_)) => {
                dpor_capped += 1;
            }
            Err(e) => eprintln!("dpor check failed on {}: {e}", case.name),
        }
    }
    println!();
    println!("DPOR engine vs SAT on the verifiable kernels (step cap {DPOR_CAP}):");
    println!(
        "  answered {dpor_answered}/{} (capped: {dpor_capped})   explored {dpor_explored} \
         candidates ({dpor_consistent} consistent, {dpor_pruned} pruned)",
        verifiable.len()
    );
    println!(
        "  wall: dpor {:>8.1} ms   sat {:>8.1} ms   verdict mismatches: {}",
        dpor_time as f64 / 1000.0,
        gpumc_time as f64 / 1000.0,
        dpor_mismatches.len()
    );

    // --- the parallel-DPOR comparison: the slowest DPOR-answerable
    //     kernels (ranked by the sequential DPOR times above), re-checked
    //     with the work-stealing driver at N workers. Verdicts must be
    //     byte-identical; the wall-clock ratio is only a measurement when
    //     the workers actually run in parallel, so — like the SAT
    //     portfolio above — the comparison is skipped (and annotated as
    //     such in the JSON) on a one-core host.
    const DPOR_PAR_WORKERS: u32 = 4;
    const DPOR_PAR_SLOWEST: usize = 6;
    let run_dpor_par = host_parallelism > 1;
    let mut dpor_ranked = dpor_case_times.clone();
    dpor_ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let dpor_slowest: Vec<usize> = dpor_ranked
        .iter()
        .take(DPOR_PAR_SLOWEST)
        .map(|&(i, _)| i)
        .collect();
    let mut dpar_seq_us = 0u128;
    let mut dpar_par_us = 0u128;
    let mut dpar_mismatches: Vec<String> = Vec::new();
    let mut dpar_tasks = 0u64;
    let mut dpar_steals = 0u64;
    let mut dpar_rows: Vec<Json> = Vec::new();
    println!();
    if run_dpor_par {
        println!(
            "parallel DPOR ({DPOR_PAR_WORKERS} workers) vs sequential on the {} slowest \
             DPOR kernels (host parallelism {host_parallelism}):",
            dpor_slowest.len()
        );
    } else {
        println!(
            "parallel DPOR ({DPOR_PAR_WORKERS} workers) vs sequential: skipped — host \
             parallelism is 1, so the workers would time-slice one core and the \
             wall-clock ratio would measure scheduling overhead, not speedup"
        );
    }
    for &i in dpor_slowest.iter().filter(|_| run_dpor_par) {
        let case = verifiable[i];
        let kernel = case.kernel.as_ref().expect("verifiable kernels exist");
        let text = emit_spirv(kernel);
        let module = parse_spirv(&text).expect("parses");
        let program = lower(&module, case.grid).expect("lowers");
        let v = Verifier::new(gpumc_models::load_shared(ModelKind::Vulkan))
            .with_bound(bound)
            .with_engine(EngineKind::Dpor)
            .with_enumeration_cap(DPOR_CAP);
        let t0 = Instant::now();
        let seq = v.clone().check_data_races(&program);
        let seq_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let par = v
            .with_parallel(gpumc::gpumc_sat::ParallelPolicy::Portfolio(
                DPOR_PAR_WORKERS,
            ))
            .check_data_races(&program);
        let par_us = t0.elapsed().as_micros();
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                if s.violated != p.violated {
                    eprintln!(
                        "!! parallel/sequential DPOR verdict mismatch on {}",
                        case.name
                    );
                    dpar_mismatches.push(case.name.clone());
                }
                dpar_seq_us += seq_us;
                dpar_par_us += par_us;
                let report = p.stats.dpor_parallel.unwrap_or_else(|| {
                    panic!("parallel DPOR run must record a report on {}", case.name)
                });
                dpar_tasks += report.tasks as u64;
                dpar_steals += report.steals;
                println!(
                    "  {:24} sequential {:>8.1} ms   parallel {:>8.1} ms   ({:>5.2}x, \
                     {} tasks, {} steals)",
                    case.name,
                    seq_us as f64 / 1000.0,
                    par_us as f64 / 1000.0,
                    if par_us > 0 {
                        seq_us as f64 / par_us as f64
                    } else {
                        1.0
                    },
                    report.tasks,
                    report.steals,
                );
                dpar_rows.push(Json::Obj(vec![
                    ("name".into(), Json::str(case.name.as_str())),
                    ("racy".into(), Json::Bool(p.violated)),
                    (
                        "verdicts_agree".into(),
                        Json::Bool(s.violated == p.violated),
                    ),
                    ("sequential_us".into(), Json::count(seq_us as u64)),
                    ("parallel_us".into(), Json::count(par_us as u64)),
                    ("tasks".into(), Json::count(report.tasks as u64)),
                    ("steals".into(), Json::count(report.steals)),
                ]));
            }
            (s, p) => {
                if let Err(e) = s {
                    eprintln!("sequential dpor check failed on {}: {e}", case.name);
                }
                if let Err(e) = p {
                    eprintln!("parallel dpor check failed on {}: {e}", case.name);
                }
            }
        }
    }
    if run_dpor_par {
        println!(
            "  total: sequential {:>8.1} ms   parallel {:>8.1} ms   speedup {:.2}x   \
             ({} tasks, {} steals, {} mismatches)",
            dpar_seq_us as f64 / 1000.0,
            dpar_par_us as f64 / 1000.0,
            if dpar_par_us > 0 {
                dpar_seq_us as f64 / dpar_par_us as f64
            } else {
                1.0
            },
            dpar_tasks,
            dpar_steals,
            dpar_mismatches.len(),
        );
    }

    // --- the tier budget: verify one whole catalog tier (default `dev`;
    //     `--tier validation|scale` for the bigger corpora) and record
    //     the wall clock against the tier's catalogued budget. The
    //     budget catches order-of-magnitude regressions; CI enforces it
    //     on multi-core hosts and only annotates on 1-core runners.
    let tier_name = gpumc_bench::value_from_args::<String>("--tier");
    let tier = match tier_name.as_deref() {
        None => gpumc_catalog::Tier::Dev,
        Some(s) => gpumc_catalog::Tier::parse(s).unwrap_or_else(|| {
            eprintln!("unknown tier `{s}` (expected dev, validation, or scale)");
            std::process::exit(2);
        }),
    };
    let tier_corpus = gpumc_catalog::tier_tests(tier);
    let tier_start = Instant::now();
    let tier_runs = gpumc::parallel_map_ordered(&tier_corpus, jobs, |_, t| {
        let program = match gpumc::parse_litmus(&t.source) {
            Ok(p) => p,
            Err(e) => return Err(format!("parse: {e}")),
        };
        let kind = match program.arch {
            gpumc::gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
            gpumc::gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
        };
        let v = Verifier::new(gpumc_models::load_shared(kind)).with_bound(t.bound);
        match v.check_all(&program) {
            Ok(_) => Ok(true),
            Err(gpumc::VerifyError::Unknown(_) | gpumc::VerifyError::TooComplex(_)) => Ok(false),
            Err(e) => Err(format!("{e}")),
        }
    });
    let tier_wall_ms = tier_start.elapsed().as_millis() as u64;
    let mut tier_answered = 0usize;
    let mut tier_unknown = 0usize;
    let mut tier_failed = 0usize;
    for (t, r) in tier_corpus.iter().zip(&tier_runs) {
        match r {
            Ok(true) => tier_answered += 1,
            Ok(false) => tier_unknown += 1,
            Err(e) => {
                tier_failed += 1;
                eprintln!("tier test {} failed: {e}", t.name);
            }
        }
    }
    let tier_budget_ms = tier.budget_ms();
    let within_budget = tier_wall_ms <= tier_budget_ms;
    println!();
    println!(
        "tier `{tier}`: {} tests, {tier_answered} answered, {tier_unknown} unknown, \
         {tier_failed} failed",
        tier_corpus.len()
    );
    println!(
        "  wall {tier_wall_ms} ms vs budget {tier_budget_ms} ms — {}",
        if within_budget {
            "within budget"
        } else {
            "OVER BUDGET"
        }
    );

    let wall = batch.elapsed();
    eprintln!(
        "{}",
        gpumc_bench::timing_footer(
            "table6",
            jobs,
            wall,
            std::time::Duration::from_micros((gpumc_time + gv_time_ns / 1000) as u64),
        )
    );

    if json_out {
        let disagreement_rows: Vec<Json> = disagreements
            .iter()
            .map(|(name, ours, theirs)| {
                let expected = gpumc_gpuverify::expected_divergence(name);
                Json::Obj(vec![
                    ("name".into(), Json::str(name.as_str())),
                    ("gpumc_racy".into(), Json::Bool(*ours)),
                    ("gpuverify_racy".into(), Json::Bool(*theirs)),
                    (
                        "expected".into(),
                        Json::Bool(matches!(expected,
                            Some(d) if d.gpumc_racy == *ours && d.gpuverify_racy == *theirs)),
                    ),
                    (
                        "reason".into(),
                        expected.map_or(Json::Null, |d| Json::str(d.reason)),
                    ),
                ])
            })
            .collect();
        let tool_row = |tool: &str, tests: usize, total_ns: u128| {
            Json::Obj(vec![
                ("tool".into(), Json::str(tool)),
                ("tests".into(), Json::count(tests as u64)),
                ("total_ns".into(), Json::count(total_ns as u64)),
                (
                    "per_test_ms".into(),
                    Json::num(total_ns as f64 / 1e6 / tests.max(1) as f64),
                ),
            ])
        };
        let report = Json::Obj(vec![
            ("bench".into(), Json::str("table6")),
            ("bound".into(), Json::count(u64::from(bound))),
            (
                "jobs".into(),
                Json::count(gpumc::effective_jobs(jobs) as u64),
            ),
            (
                "corpus".into(),
                Json::Obj(vec![
                    ("total".into(), Json::count(corpus.len() as u64)),
                    ("compile_fails".into(), Json::count(compile_fail as u64)),
                    ("trivially_race_free".into(), Json::count(trivial as u64)),
                    ("verifiable".into(), Json::count(verifiable.len() as u64)),
                ]),
            ),
            (
                "tools".into(),
                Json::Arr(vec![
                    tool_row("gpumc", gpumc_count, gpumc_time * 1000),
                    tool_row("gpuverify", gv_count, gv_time_ns),
                ]),
            ),
            (
                "agreement".into(),
                Json::Obj(vec![
                    ("agree".into(), Json::count(agree as u64)),
                    ("common".into(), Json::count(gpumc_racy.len() as u64)),
                    (
                        "expected_divergences".into(),
                        Json::count(gpumc_gpuverify::expected_divergences().len() as u64),
                    ),
                    (
                        "unexpected".into(),
                        Json::Arr(unexpected.iter().map(Json::str).collect()),
                    ),
                    (
                        "missing".into(),
                        Json::Arr(missing.iter().map(|n| Json::str(*n)).collect()),
                    ),
                    ("disagreements".into(), Json::Arr(disagreement_rows)),
                ]),
            ),
            (
                "three_property".into(),
                Json::Obj(vec![
                    ("incremental_us".into(), Json::count(inc_us as u64)),
                    ("fresh_us".into(), Json::count(fresh_us as u64)),
                    (
                        "speedup".into(),
                        Json::num(if inc_us > 0 {
                            fresh_us as f64 / inc_us as f64
                        } else {
                            1.0
                        }),
                    ),
                ]),
            ),
            (
                "simplify".into(),
                Json::Obj(vec![
                    ("clauses_before".into(), Json::count(clauses_before)),
                    ("clauses_after".into(), Json::count(clauses_after)),
                    (
                        "clause_reduction_pct".into(),
                        Json::num(reduction(clauses_before, clauses_after)),
                    ),
                    ("vars_before".into(), Json::count(vars_before)),
                    ("vars_after".into(), Json::count(vars_after)),
                    ("literals_before".into(), Json::count(literals_before)),
                    ("literals_after".into(), Json::count(literals_after)),
                    ("simplify_us".into(), Json::count(simplify_us)),
                    ("on_solve_us".into(), Json::count(on_solve_us)),
                    ("off_solve_us".into(), Json::count(off_solve_us)),
                    ("on_wall_us".into(), Json::count(on_wall_us as u64)),
                    ("off_wall_us".into(), Json::count(off_wall_us as u64)),
                ]),
            ),
            (
                "portfolio".into(),
                if !run_portfolio {
                    Json::Obj(vec![
                        ("skipped".into(), Json::Bool(true)),
                        (
                            "reason".into(),
                            Json::str(
                                "host_parallelism == 1: sequential-vs-parallel wall clock \
                                 would measure time-slicing overhead, not speedup",
                            ),
                        ),
                        ("workers".into(), Json::count(u64::from(PORTFOLIO_WORKERS))),
                        (
                            "host_parallelism".into(),
                            Json::count(host_parallelism as u64),
                        ),
                    ])
                } else {
                    Json::Obj(vec![
                        ("workers".into(), Json::count(u64::from(PORTFOLIO_WORKERS))),
                        ("tests".into(), Json::count(portfolio_rows.len() as u64)),
                        (
                            "host_parallelism".into(),
                            Json::count(host_parallelism as u64),
                        ),
                        ("sequential_us".into(), Json::count(seq_total_us as u64)),
                        ("portfolio_us".into(), Json::count(par_total_us as u64)),
                        (
                            "speedup".into(),
                            Json::num(if par_total_us > 0 {
                                seq_total_us as f64 / par_total_us as f64
                            } else {
                                1.0
                            }),
                        ),
                        ("clauses_exported".into(), Json::count(pstats.exported)),
                        ("clauses_imported".into(), Json::count(pstats.imported)),
                        (
                            "cube_fallback_runs".into(),
                            Json::count(u64::from(pstats.cube_fallback)),
                        ),
                        ("kernels".into(), Json::Arr(portfolio_rows)),
                    ])
                },
            ),
            (
                "dpor".into(),
                Json::Obj(vec![
                    ("step_cap".into(), Json::count(DPOR_CAP)),
                    ("tests".into(), Json::count(verifiable.len() as u64)),
                    ("answered".into(), Json::count(dpor_answered as u64)),
                    ("capped".into(), Json::count(dpor_capped as u64)),
                    ("explored".into(), Json::count(dpor_explored)),
                    ("consistent".into(), Json::count(dpor_consistent)),
                    ("pruned".into(), Json::count(dpor_pruned)),
                    ("dpor_us".into(), Json::count(dpor_time as u64)),
                    ("sat_us".into(), Json::count(gpumc_time as u64)),
                    (
                        "mismatches".into(),
                        Json::Arr(
                            dpor_mismatches
                                .iter()
                                .map(|n| Json::str(n.as_str()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "dpor_parallel".into(),
                if !run_dpor_par {
                    Json::Obj(vec![
                        ("skipped".into(), Json::Bool(true)),
                        (
                            "reason".into(),
                            Json::str(
                                "host_parallelism == 1: sequential-vs-parallel wall clock \
                                 would measure time-slicing overhead, not speedup",
                            ),
                        ),
                        ("workers".into(), Json::count(u64::from(DPOR_PAR_WORKERS))),
                        (
                            "host_parallelism".into(),
                            Json::count(host_parallelism as u64),
                        ),
                    ])
                } else {
                    Json::Obj(vec![
                        ("workers".into(), Json::count(u64::from(DPOR_PAR_WORKERS))),
                        ("tests".into(), Json::count(dpar_rows.len() as u64)),
                        (
                            "host_parallelism".into(),
                            Json::count(host_parallelism as u64),
                        ),
                        ("sequential_us".into(), Json::count(dpar_seq_us as u64)),
                        ("parallel_us".into(), Json::count(dpar_par_us as u64)),
                        (
                            "speedup".into(),
                            Json::num(if dpar_par_us > 0 {
                                dpar_seq_us as f64 / dpar_par_us as f64
                            } else {
                                1.0
                            }),
                        ),
                        ("tasks".into(), Json::count(dpar_tasks)),
                        ("steals".into(), Json::count(dpar_steals)),
                        (
                            "mismatches".into(),
                            Json::Arr(
                                dpar_mismatches
                                    .iter()
                                    .map(|n| Json::str(n.as_str()))
                                    .collect(),
                            ),
                        ),
                        ("kernels".into(), Json::Arr(dpar_rows)),
                    ])
                },
            ),
            (
                "tier".into(),
                Json::Obj(vec![
                    ("tier".into(), Json::str(tier.name())),
                    ("tests".into(), Json::count(tier_corpus.len() as u64)),
                    ("answered".into(), Json::count(tier_answered as u64)),
                    ("unknown".into(), Json::count(tier_unknown as u64)),
                    ("failed".into(), Json::count(tier_failed as u64)),
                    ("wall_ms".into(), Json::count(tier_wall_ms)),
                    ("budget_ms".into(), Json::count(tier_budget_ms)),
                    ("within_budget".into(), Json::Bool(within_budget)),
                ]),
            ),
            ("kernels".into(), Json::Arr(kernel_rows)),
            ("wall_us".into(), Json::count(wall.as_micros() as u64)),
        ]);
        let path = "BENCH_table6.json";
        match std::fs::write(path, format!("{report}\n")) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
