//! Regenerates Table 7: verification of synchronization primitives
//! (caslock / ticketlock / ttaslock / xf-barrier and their weakenings).
//!
//! Run with: `cargo run --release -p gpumc-bench --bin table7 [-- --jobs N]`
//!
//! With `--all`, each primitive's mutual-exclusion assertion *and* its
//! liveness (can a spinloop get stuck?) are answered from one
//! incremental solver session; the extra `Live` column reports the
//! latter and the per-query solver deltas go to stderr.

use std::time::Instant;

use gpumc::Verifier;
use gpumc_models::ModelKind;

fn main() {
    let jobs = gpumc_bench::jobs_from_args();
    let all = gpumc_bench::flag_from_args("--all");
    // `FAST=1` skips the slowest correct-case row (ttaslock base, ~15
    // minutes on the reference machine) for quick harness runs.
    let fast = std::env::var("FAST").is_ok();
    let batch = Instant::now();
    let benches: Vec<_> = gpumc_catalog::primitive_benchmarks()
        .into_iter()
        .filter(|b| {
            if fast && b.name == "ttaslock" {
                println!("{:26} (skipped under FAST=1)", b.name);
                false
            } else {
                true
            }
        })
        .collect();

    // Each primitive is independent; fan out, then print in input order.
    let results = gpumc::parallel_map_ordered(&benches, jobs, |_, b| {
        let program = match gpumc::parse_litmus(&b.test.source) {
            Ok(p) => p,
            Err(e) => return Err(format!("parse failed: {e}")),
        };
        let v =
            Verifier::new(gpumc_models::load_shared(ModelKind::Vulkan)).with_bound(b.test.bound);
        let t0 = Instant::now();
        if all {
            // One incremental session answers mutual exclusion + liveness.
            v.check_all(&program)
                .map(|o| {
                    (
                        o.assertion.clone(),
                        Some(o.liveness.violated),
                        o.render_query_stats(),
                        t0.elapsed().as_millis(),
                    )
                })
                .map_err(|e| e.to_string())
        } else {
            v.check_assertion(&program)
                .map(|o| (o, None, String::new(), t0.elapsed().as_millis()))
                .map_err(|e| e.to_string())
        }
    });

    println!(
        "{:26} {:>5} {:>4} {:>5} {:>8}{} {:>10}",
        "Benchmark",
        "Grid",
        "|T|",
        "|E|",
        "Correct",
        if all { "     Live" } else { "" },
        "Time (ms)"
    );
    let mut csv = String::from("benchmark,grid,threads,events,correct,expected,time_ms\n");
    let mut aggregate_ms = 0u128;
    for (b, result) in benches.iter().zip(results) {
        match result {
            Ok((o, live, query_stats, ms)) => {
                aggregate_ms += ms;
                let correct = !o.reachable;
                let live_col = match live {
                    Some(violated) => format!("{:>9}", if violated { "stuck" } else { "yes" }),
                    None => String::new(),
                };
                println!(
                    "{:26} {:>5} {:>4} {:>5} {:>8}{} {:>10}{}",
                    b.name,
                    b.grid.to_string(),
                    b.grid.threads(),
                    o.stats.events,
                    if correct { "yes" } else { "no" },
                    live_col,
                    ms,
                    if correct == b.expect_correct {
                        ""
                    } else {
                        "   !! expectation mismatch"
                    }
                );
                if !query_stats.is_empty() {
                    eprintln!("{}:", b.name);
                    eprint!("{query_stats}");
                }
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{}\n",
                    b.name,
                    b.grid,
                    b.grid.threads(),
                    o.stats.events,
                    correct,
                    b.expect_correct,
                    ms
                ));
            }
            Err(e) => eprintln!("{}: {e}", b.name),
        }
    }
    if let Err(e) = std::fs::write("table7.csv", csv) {
        eprintln!("could not write table7.csv: {e}");
    } else {
        eprintln!("wrote table7.csv");
    }
    eprintln!(
        "{}",
        gpumc_bench::timing_footer(
            "table7",
            jobs,
            batch.elapsed(),
            std::time::Duration::from_millis(aggregate_ms as u64),
        )
    );
}
