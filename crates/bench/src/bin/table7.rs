//! Regenerates Table 7: verification of synchronization primitives
//! (caslock / ticketlock / ttaslock / xf-barrier and their weakenings).
//!
//! Run with: `cargo run --release -p gpumc-bench --bin table7`

use std::io::Write as _;
use std::time::Instant;

use gpumc::Verifier;

fn main() {
    // `FAST=1` skips the slowest correct-case row (ttaslock base, ~15
    // minutes on the reference machine) for quick harness runs.
    let fast = std::env::var("FAST").is_ok();
    println!(
        "{:26} {:>5} {:>4} {:>5} {:>8} {:>10}",
        "Benchmark", "Grid", "|T|", "|E|", "Correct", "Time (ms)"
    );
    let mut csv = String::from("benchmark,grid,threads,events,correct,expected,time_ms\n");
    for b in gpumc_catalog::primitive_benchmarks() {
        if fast && b.name == "ttaslock" {
            println!("{:26} (skipped under FAST=1)", b.name);
            continue;
        }
        let program = match gpumc::parse_litmus(&b.test.source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: parse failed: {e}", b.name);
                continue;
            }
        };
        let v = Verifier::new(gpumc_models::vulkan()).with_bound(b.test.bound);
        let t0 = Instant::now();
        match v.check_assertion(&program) {
            Ok(o) => {
                let ms = t0.elapsed().as_millis();
                let correct = !o.reachable;
                println!(
                    "{:26} {:>5} {:>4} {:>5} {:>8} {:>10}{}",
                    b.name,
                    b.grid.to_string(),
                    b.grid.threads(),
                    o.stats.events,
                    if correct { "yes" } else { "no" },
                    ms,
                    if correct == b.expect_correct {
                        ""
                    } else {
                        "   !! expectation mismatch"
                    }
                );
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{}\n",
                    b.name,
                    b.grid,
                    b.grid.threads(),
                    o.stats.events,
                    correct,
                    b.expect_correct,
                    ms
                ));
                std::io::stdout().flush().ok();
            }
            Err(e) => eprintln!("{}: {e}", b.name),
        }
    }
    if let Err(e) = std::fs::write("table7.csv", csv) {
        eprintln!("could not write table7.csv: {e}");
    } else {
        eprintln!("wrote table7.csv");
    }
}
