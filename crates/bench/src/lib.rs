//! Experiment harness binaries; see `src/bin/`.
