//! Shared plumbing for the experiment binaries (see `src/bin/`):
//! `--jobs` parsing and the wall-clock vs aggregate-time report line.
//!
//! Every table/figure binary fans its independent verification work out
//! through [`gpumc::parallel_map_ordered`]; the helpers here keep their
//! command lines and timing output consistent.

use std::time::Duration;

/// Parses `--jobs N` / `-j N` from the process arguments, falling back
/// to the `GPUMC_JOBS` environment variable, then to `0` (= all cores).
///
/// Unknown arguments are ignored — each binary owns its own interface and
/// most predate flags entirely.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" || a == "-j" {
            if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                return n;
            }
            eprintln!("warning: bad --jobs value, using all cores");
            return 0;
        }
    }
    std::env::var("GPUMC_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Whether boolean flag `name` (e.g. `--all`) is present in the process
/// arguments. Unknown arguments are ignored, as in [`jobs_from_args`].
pub fn flag_from_args(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses a valued argument `name N` (e.g. `--bound 1`) from the process
/// arguments; `None` when absent or unparsable. Unknown arguments are
/// ignored, as in [`jobs_from_args`].
pub fn value_from_args<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

/// The standard batch timing footer: end-to-end wall clock versus the
/// sum of per-item worker times, and the achieved overlap.
pub fn timing_footer(label: &str, jobs: usize, wall: Duration, aggregate: Duration) -> String {
    let concurrency = if wall.is_zero() {
        1.0
    } else {
        aggregate.as_secs_f64() / wall.as_secs_f64()
    };
    format!(
        "{label}: jobs {} | wall {:.1} ms | aggregate {:.1} ms | concurrency {concurrency:.2}x",
        gpumc::effective_jobs(jobs),
        wall.as_secs_f64() * 1e3,
        aggregate.as_secs_f64() * 1e3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footer_reports_overlap() {
        let f = timing_footer(
            "suite",
            1,
            Duration::from_millis(100),
            Duration::from_millis(250),
        );
        assert!(f.contains("wall 100.0 ms"));
        assert!(f.contains("aggregate 250.0 ms"));
        assert!(f.contains("concurrency 2.50x"));
    }
}
