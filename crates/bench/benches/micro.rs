//! Criterion micro-benchmarks for the hot paths of the pipeline:
//! SAT solving, relation algebra, encoding, enumeration — plus the
//! relation-analysis ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};

fn mp_graph(threads: usize) -> gpumc::gpumc_ir::EventGraph {
    let t = gpumc_catalog::scaling_test(gpumc_catalog::ScalePattern::Mp, threads);
    let p = gpumc::parse_litmus(&t.source).unwrap();
    gpumc::gpumc_ir::compile(&gpumc::gpumc_ir::unroll(&p, 1).unwrap())
}

#[allow(clippy::needless_range_loop)] // i1 < i2 index pairs read better as ranges
fn bench_solver_pigeonhole(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole-7-into-6", |b| {
        b.iter(|| {
            let mut s = gpumc::gpumc_sat::Solver::new();
            let n = 7;
            let m = 6;
            let p: Vec<Vec<gpumc::gpumc_sat::Lit>> = (0..n)
                .map(|_| (0..m).map(|_| s.new_lit()).collect())
                .collect();
            for row in &p {
                s.add_clause(row.clone());
            }
            for j in 0..m {
                for i1 in 0..n {
                    for i2 in (i1 + 1)..n {
                        s.add_clause([!p[i1][j], !p[i2][j]]);
                    }
                }
            }
            assert!(s.solve().is_unsat());
        })
    });
}

fn bench_relation_algebra(c: &mut Criterion) {
    use gpumc::gpumc_exec::Relation;
    use gpumc::gpumc_ir::EventId;
    let n = 200;
    let mut r = Relation::empty(n);
    let mut seed = 12345u64;
    for _ in 0..800 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = (seed >> 33) as usize % n;
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = (seed >> 33) as usize % n;
        r.insert(EventId(a as u32), EventId(b as u32));
    }
    c.bench_function("bitrel/compose-200", |b| {
        b.iter(|| r.compose(&r));
    });
    c.bench_function("bitrel/transitive-closure-200", |b| {
        b.iter(|| r.transitive_closure());
    });
}

fn bench_encode(c: &mut Criterion) {
    let g = mp_graph(8);
    let model = gpumc_models::ptx75();
    c.bench_function("encode/mp-8-ptx75", |b| {
        b.iter(|| gpumc::gpumc_encode::encode(&g, &model, &Default::default()).unwrap())
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let model = gpumc_models::ptx75();
    let t = gpumc_catalog::scaling_test(gpumc_catalog::ScalePattern::Mp, 4);
    let p = gpumc::parse_litmus(&t.source).unwrap();
    c.bench_function("verify/mp-4-sat", |b| {
        b.iter(|| {
            let v = gpumc::Verifier::new(model.clone()).with_bound(1);
            v.check_assertion(&p).unwrap()
        })
    });
    c.bench_function("verify/mp-4-enumerate", |b| {
        b.iter(|| {
            let v = gpumc::Verifier::new(model.clone())
                .with_bound(1)
                .with_engine(gpumc::EngineKind::Enumerate {
                    straight_line_only: false,
                });
            v.check_assertion(&p).unwrap()
        })
    });
}

/// The relation-analysis ablation: encoding sizes and times with the
/// Table 3 bounds enabled vs disabled.
fn bench_ablation_bounds(c: &mut Criterion) {
    let g = mp_graph(8);
    let model = gpumc_models::ptx75();
    let with = gpumc::gpumc_encode::EncodeOptions {
        use_bounds: true,
        ..Default::default()
    };
    let without = gpumc::gpumc_encode::EncodeOptions {
        use_bounds: false,
        ..Default::default()
    };
    let ew = gpumc::gpumc_encode::encode(&g, &model, &with).unwrap();
    let ewo = gpumc::gpumc_encode::encode(&g, &model, &without).unwrap();
    eprintln!(
        "[ablation] relation analysis ON:  {} vars, {} clauses",
        ew.num_vars(),
        ew.num_clauses()
    );
    eprintln!(
        "[ablation] relation analysis OFF: {} vars, {} clauses",
        ewo.num_vars(),
        ewo.num_clauses()
    );
    c.bench_function("ablation/encode-with-bounds", |b| {
        b.iter(|| gpumc::gpumc_encode::encode(&g, &model, &with).unwrap())
    });
    c.bench_function("ablation/encode-without-bounds", |b| {
        b.iter(|| gpumc::gpumc_encode::encode(&g, &model, &without).unwrap())
    });
}

/// The incremental query layer: all three properties (assertion,
/// liveness, data races) of a Vulkan test answered from one solver
/// session versus three fresh encodings. Prints the per-query solver
/// deltas once so the learnt-clause reuse is visible, and asserts the
/// two paths agree on every verdict.
fn bench_incremental_session(c: &mut Criterion) {
    let src = r#"
VULKAN vk-mp-spin
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | LC00: ;
st.atom.rel.dv.sc0 flag, 1 | ld.atom.acq.dv.sc0 r0, flag ;
 | bne r0, 1, LC00 ;
 | ld.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;
    let p = gpumc::parse_litmus(src).unwrap();
    let model = gpumc_models::vulkan();
    let inc = gpumc::Verifier::new(model.clone()).with_bound(2);
    let fresh = inc.clone().with_incremental(false);
    let i = inc.check_all(&p).unwrap();
    eprintln!("[incremental] three-property Vulkan session, per-query solver deltas:");
    eprint!("{}", i.render_query_stats());
    let f = fresh.check_all(&p).unwrap();
    assert_eq!(i.assertion.reachable, f.assertion.reachable);
    assert_eq!(i.liveness.violated, f.liveness.violated);
    assert_eq!(
        i.data_races.as_ref().map(|d| d.violated),
        f.data_races.as_ref().map(|d| d.violated)
    );
    c.bench_function("incremental/vk-three-property-session", |b| {
        b.iter(|| inc.check_all(&p).unwrap())
    });
    c.bench_function("incremental/vk-three-property-fresh", |b| {
        b.iter(|| fresh.check_all(&p).unwrap())
    });
}

/// The CNF simplifier: encoding with SatELite-style simplification on
/// vs off, and the simplification pass alone on a pre-built encoding.
/// Prints the pre/post sizes once so the reduction is visible.
fn bench_simplify(c: &mut Criterion) {
    let g = mp_graph(8);
    let model = gpumc_models::ptx75();
    let on = gpumc::gpumc_encode::EncodeOptions {
        simplify: true,
        ..Default::default()
    };
    let off = gpumc::gpumc_encode::EncodeOptions {
        simplify: false,
        ..Default::default()
    };
    let enc = gpumc::gpumc_encode::encode(&g, &model, &on).unwrap();
    let st = enc.simplify_stats().expect("stats recorded when on");
    eprintln!(
        "[simplify] mp-8-ptx75: {} -> {} clauses, {} -> {} vars \
         ({} eliminated, {} equivalent, {} subsumed)",
        st.clauses_before,
        st.clauses_after,
        st.vars_before,
        st.vars_after,
        st.vars_eliminated,
        st.equivs_substituted,
        st.clauses_subsumed
    );
    c.bench_function("simplify/encode-mp-8-with-simplify", |b| {
        b.iter(|| gpumc::gpumc_encode::encode(&g, &model, &on).unwrap())
    });
    c.bench_function("simplify/encode-mp-8-without-simplify", |b| {
        b.iter(|| gpumc::gpumc_encode::encode(&g, &model, &off).unwrap())
    });
    c.bench_function("simplify/solve-mp-8-simplified", |b| {
        b.iter(|| {
            let mut e = gpumc::gpumc_encode::encode(&g, &model, &on).unwrap();
            e.find_assertion_witness().unwrap()
        })
    });
    c.bench_function("simplify/solve-mp-8-unsimplified", |b| {
        b.iter(|| {
            let mut e = gpumc::gpumc_encode::encode(&g, &model, &off).unwrap();
            e.find_assertion_witness().unwrap()
        })
    });
}

fn bench_cat_parse(c: &mut Criterion) {
    c.bench_function("cat/parse-vulkan-model", |b| {
        b.iter(|| gpumc::gpumc_cat::parse(gpumc_models::VULKAN_CAT).unwrap())
    });
}

/// Model loading: a fresh `.cat` parse per use vs the process-wide shared
/// cache (`load_shared` parses each model at most once per process).
fn bench_model_cache(c: &mut Criterion) {
    use gpumc_models::ModelKind;
    c.bench_function("models/load-uncached-ptx75", |b| {
        b.iter(|| gpumc::gpumc_cat::parse(ModelKind::Ptx75.source()).unwrap())
    });
    c.bench_function("models/load-shared-ptx75", |b| {
        b.iter(|| gpumc_models::load_shared(ModelKind::Ptx75))
    });
}

/// Batch verification: the suite runner over the figure corpus with one
/// worker vs the machine's full worker pool. On a single-core host the two
/// converge; with more cores the `jobs-N` wall time drops while the
/// rendered table stays byte-identical.
fn bench_suite_jobs(c: &mut Criterion) {
    let tests = gpumc_catalog::figure_tests();
    let n = gpumc::effective_jobs(0);
    for jobs in [1, n] {
        let runner = gpumc::SuiteRunner::new(gpumc::SuiteConfig {
            jobs,
            ..Default::default()
        });
        c.bench_function(&format!("suite/figures-jobs-{jobs}"), |b| {
            b.iter(|| {
                let report = runner.run(&tests);
                assert_eq!(report.passed(), tests.len());
                report
            })
        });
        if n == 1 {
            break; // single-core host: jobs-1 and jobs-N are the same config
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_solver_pigeonhole,
        bench_relation_algebra,
        bench_encode,
        bench_end_to_end,
        bench_ablation_bounds,
        bench_incremental_session,
        bench_simplify,
        bench_cat_parse,
        bench_model_cache,
        bench_suite_jobs
}
criterion_main!(benches);
