//! The shipped `.cat` consistency models: PTX v6.0, PTX v7.5, Vulkan.
//!
//! The model sources live in `crates/models/cat/` and are embedded into
//! the binary; [`load`] parses and resolves them through `gpumc-cat`.
//!
//! Parsing and resolving a model is pure front-end work, so it is done at
//! most **once per [`ModelKind`] per process**: [`load_shared`] returns a
//! process-wide `Arc<CatModel>` from a [`OnceLock`] cache, and [`load`]
//! clones out of the same cache. Batch drivers (the suite runner, the
//! bench binaries) share the `Arc` across worker threads; [`parse_count`]
//! exposes the number of actual parses for tests and diagnostics.
//!
//! # Example
//!
//! ```
//! let ptx = gpumc_models::ptx75();
//! assert_eq!(ptx.name(), "PTX v7.5");
//! assert!(ptx.axioms().iter().any(|a| a.name.as_deref() == Some("no-thin-air")));
//!
//! // Shared handles point at the same parsed model.
//! let a = gpumc_models::load_shared(gpumc_models::ModelKind::Ptx75);
//! let b = gpumc_models::load_shared(gpumc_models::ModelKind::Ptx75);
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use gpumc_cat::CatModel;

/// The PTX v6.0 model source (`cat/ptx-v6.0.cat`).
pub const PTX60_CAT: &str = include_str!("../cat/ptx-v6.0.cat");
/// The PTX v7.5 model source with mixed proxies (`cat/ptx-v7.5.cat`).
pub const PTX75_CAT: &str = include_str!("../cat/ptx-v7.5.cat");
/// The Vulkan model source (`cat/vulkan.cat`).
pub const VULKAN_CAT: &str = include_str!("../cat/vulkan.cat");

/// A shipped consistency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// NVIDIA PTX ISA 6.0.
    Ptx60,
    /// NVIDIA PTX ISA 7.5 (mixed proxies).
    Ptx75,
    /// Khronos Vulkan.
    Vulkan,
}

impl ModelKind {
    /// All shipped models.
    pub const ALL: [ModelKind; 3] = [ModelKind::Ptx60, ModelKind::Ptx75, ModelKind::Vulkan];

    /// The embedded `.cat` source of the model.
    pub fn source(self) -> &'static str {
        match self {
            ModelKind::Ptx60 => PTX60_CAT,
            ModelKind::Ptx75 => PTX75_CAT,
            ModelKind::Vulkan => VULKAN_CAT,
        }
    }

    /// The conventional file name of the model.
    pub fn file_name(self) -> &'static str {
        match self {
            ModelKind::Ptx60 => "ptx-v6.0.cat",
            ModelKind::Ptx75 => "ptx-v7.5.cat",
            ModelKind::Vulkan => "vulkan.cat",
        }
    }

    /// Parses a model name as used on the CLI (`ptx-v6.0`, `ptx-v7.5`,
    /// `vulkan`/`spirv`).
    pub fn from_name(name: &str) -> Option<ModelKind> {
        match name {
            "ptx-v6.0" | "ptx6" | "ptx60" => Some(ModelKind::Ptx60),
            "ptx-v7.5" | "ptx7" | "ptx75" | "ptx" => Some(ModelKind::Ptx75),
            "vulkan" | "spirv" | "vk" => Some(ModelKind::Vulkan),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelKind::Ptx60 => "ptx-v6.0",
            ModelKind::Ptx75 => "ptx-v7.5",
            ModelKind::Vulkan => "vulkan",
        })
    }
}

/// One cache slot per [`ModelKind::ALL`] entry.
static CACHE: [OnceLock<Arc<CatModel>>; 3] = [OnceLock::new(), OnceLock::new(), OnceLock::new()];

/// Number of times an embedded model source has actually been parsed.
static PARSES: AtomicUsize = AtomicUsize::new(0);

fn cache_index(kind: ModelKind) -> usize {
    match kind {
        ModelKind::Ptx60 => 0,
        ModelKind::Ptx75 => 1,
        ModelKind::Vulkan => 2,
    }
}

/// Returns the process-wide shared instance of a shipped model,
/// parsing and resolving it on first use only.
///
/// The returned `Arc` is shared freely across threads; the parse runs
/// exactly once per [`ModelKind`] per process.
///
/// # Panics
///
/// Panics if the embedded source fails to parse — that would be a
/// packaging bug, covered by unit tests.
pub fn load_shared(kind: ModelKind) -> Arc<CatModel> {
    CACHE[cache_index(kind)]
        .get_or_init(|| {
            PARSES.fetch_add(1, Ordering::SeqCst);
            let model = gpumc_cat::parse(kind.source())
                .unwrap_or_else(|e| panic!("embedded model {kind} is invalid: {e}"));
            Arc::new(model)
        })
        .clone()
}

/// How many embedded-model parses this process has performed (at most
/// one per [`ModelKind`]). Exposed for the cache-effectiveness tests.
pub fn parse_count() -> usize {
    PARSES.load(Ordering::SeqCst)
}

/// Loads a shipped model by value.
///
/// Since the shared cache was introduced this clones the cached instance
/// instead of re-parsing; prefer [`load_shared`] to avoid the clone.
///
/// # Panics
///
/// Panics if the embedded source fails to parse — that would be a
/// packaging bug, covered by unit tests.
pub fn load(kind: ModelKind) -> CatModel {
    (*load_shared(kind)).clone()
}

/// The PTX v6.0 model.
pub fn ptx60() -> CatModel {
    load(ModelKind::Ptx60)
}

/// The PTX v7.5 model.
pub fn ptx75() -> CatModel {
    load(ModelKind::Ptx75)
}

/// The Vulkan model.
pub fn vulkan() -> CatModel {
    load(ModelKind::Vulkan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_parse() {
        for kind in ModelKind::ALL {
            let m = load(kind);
            assert!(!m.axioms().is_empty(), "{kind} has axioms");
        }
    }

    #[test]
    fn model_names() {
        assert_eq!(ptx60().name(), "PTX v6.0");
        assert_eq!(ptx75().name(), "PTX v7.5");
        assert_eq!(vulkan().name(), "VULKAN");
    }

    #[test]
    fn ptx_models_use_gpu_base_relations() {
        for m in [ptx60(), ptx75()] {
            let rels = m.referenced_base_rels();
            for r in ["sr", "sync_fence", "sync_barrier", "vloc", "rmw"] {
                assert!(rels.iter().any(|x| x == r), "missing {r}");
            }
        }
    }

    #[test]
    fn vulkan_uses_scope_relations_and_flags_races() {
        let m = vulkan();
        let rels = m.referenced_base_rels();
        for r in ["ssg", "swg", "sqf", "ssw", "syncbar", "vloc"] {
            assert!(rels.iter().any(|x| x == r), "missing {r}");
        }
        assert_eq!(m.flagged_axioms().count(), 1);
        assert_eq!(
            m.flagged_axioms().next().unwrap().name.as_deref(),
            Some("dr")
        );
    }

    #[test]
    fn proxies_only_in_ptx75() {
        let has_proxy = |m: &CatModel| {
            // sameProx is defined only in the proxy model.
            m.def_id("sameProx").is_some()
        };
        assert!(!has_proxy(&ptx60()));
        assert!(has_proxy(&ptx75()));
        assert!(!has_proxy(&vulkan()));
    }

    #[test]
    fn shared_cache_parses_each_model_once() {
        // Warm every slot first so concurrent sibling tests cannot bump
        // the counter between our observations.
        for kind in ModelKind::ALL {
            let _ = load_shared(kind);
        }
        let parses = parse_count();
        assert!(
            parses <= ModelKind::ALL.len(),
            "at most one parse per model"
        );

        // Hammer the cache from several threads: no new parses, and every
        // handle aliases the same instance.
        let first = load_shared(ModelKind::Ptx75);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for kind in ModelKind::ALL {
                        let m = load_shared(kind);
                        assert!(!m.axioms().is_empty());
                    }
                    assert!(Arc::ptr_eq(&first, &load_shared(ModelKind::Ptx75)));
                });
            }
        });
        assert_eq!(parse_count(), parses, "cache hits must not re-parse");

        // `load` also goes through the cache.
        let _ = load(ModelKind::Ptx75);
        assert_eq!(parse_count(), parses);
    }

    #[test]
    fn models_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CatModel>();
        assert_send_sync::<Arc<CatModel>>();
    }

    #[test]
    fn from_name_roundtrip() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::from_name(&kind.to_string()), Some(kind));
        }
        assert_eq!(ModelKind::from_name("nope"), None);
    }

    #[test]
    fn axiom_labels_present() {
        let m = ptx75();
        let names: Vec<_> = m
            .axioms()
            .iter()
            .filter_map(|a| a.name.as_deref())
            .collect();
        for expected in [
            "coherence-causality",
            "coherence-strong",
            "fence-sc",
            "atomicity",
            "no-thin-air",
            "causality",
        ] {
            assert!(names.contains(&expected), "missing axiom {expected}");
        }
    }
}
