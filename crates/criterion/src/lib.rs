//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched; this vendored stub implements the surface the
//! workspace benches use — [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple median-of-samples timer printing one line per
//! benchmark.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`]. Prints `name: median ± spread` to stdout.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        let lo = b.samples.first().copied().unwrap_or_default();
        let hi = b.samples.last().copied().unwrap_or_default();
        println!(
            "bench {name:40} median {:>12.3?}   range [{:.3?} .. {:.3?}]",
            median, lo, hi
        );
        self
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once for warm-up, then `sample_size` timed times.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("stub/self-test", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
