//! Request cost prediction for the serve-layer scheduler.
//!
//! The dominant terms in verification cost track the encoding size: the
//! relation analysis and the CNF encoding are both quadratic in the
//! event count (every derived relation is a set of event *pairs*, see
//! [`RelationAnalysis`](crate::RelationAnalysis)), and unrolling scales
//! the event count roughly linearly with the bound. The engines then
//! multiply that base by very different constants: SAT amortizes one
//! encoding over all property queries, DPOR re-executes per trace, and
//! exhaustive enumeration visits every interleaving.
//!
//! The estimate is a *relative* priority for lane placement and
//! stealing order — not a runtime prediction — so a crude monotone
//! model is exactly enough: cheap litmus queries must sort below
//! encoding monsters, and they do.

/// Relative engine weights for [`estimate_cost`]. Indexed by the
/// serve-layer's canonical engine names; unknown names get the most
/// pessimistic weight (misrouting an unknown engine to the fast lane
/// would let it starve the cheap queries behind it).
pub fn engine_weight(engine: &str) -> u64 {
    match engine {
        "sat" => 2,
        "dpor" => 4,
        "enumerate" | "alloy" => 8,
        _ => 8,
    }
}

/// Predicted relative cost of verifying a compiled graph of `n_events`
/// events at unrolling bound `bound`: `events² × bound × weight`,
/// saturating. The quadratic term is the pair-relation encoding; the
/// bound term charges for the deeper search the extra unrolling opens
/// up beyond the events it already added.
pub fn estimate_cost(n_events: usize, bound: u32, engine_weight: u64) -> u64 {
    let e = n_events as u64;
    e.saturating_mul(e)
        .saturating_mul(u64::from(bound.max(1)))
        .saturating_mul(engine_weight.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_monotone_in_every_input() {
        let base = estimate_cost(10, 2, 2);
        assert!(estimate_cost(20, 2, 2) > base);
        assert!(estimate_cost(10, 4, 2) > base);
        assert!(estimate_cost(10, 2, 8) > base);
    }

    #[test]
    fn degenerate_inputs_do_not_zero_out() {
        // bound 0 / weight 0 are clamped, and cost saturates instead of
        // overflowing.
        assert_eq!(estimate_cost(10, 0, 0), 100);
        assert_eq!(estimate_cost(usize::MAX, u32::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn engine_weights_order_the_engines() {
        assert!(engine_weight("sat") < engine_weight("dpor"));
        assert!(engine_weight("dpor") < engine_weight("enumerate"));
        assert_eq!(engine_weight("enumerate"), engine_weight("alloy"));
        // Unknown engines schedule pessimistically.
        assert_eq!(engine_weight("z3"), engine_weight("enumerate"));
    }

    #[test]
    fn litmus_scale_queries_sort_below_kernel_scale() {
        // A two-thread litmus test at bound 2 vs. an unrolled kernel at
        // bound 14: the scheduler's fast-lane split relies on a wide
        // gap, not a close call.
        let litmus = estimate_cost(14, 2, 2);
        let kernel = estimate_cost(60, 14, 2);
        assert!(kernel > 100 * litmus, "kernel {kernel} vs litmus {litmus}");
    }
}
