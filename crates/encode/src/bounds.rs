//! Relation analysis: static lower and upper bounds (Table 3).
//!
//! An *upper bound* contains every pair that may belong to the relation
//! in some execution; a *lower bound* contains the pairs guaranteed to
//! belong whenever both events execute. For static relations the two
//! coincide and the SAT encoding needs no decision variables at all.
//!
//! The computed bounds are split off into [`StaticBounds`] — an owned,
//! graph-independent value — so that repeated encodings of the same
//! (program, bound) pair (e.g. a safety check followed by a liveness
//! check of one litmus test) can share a single computation through
//! [`crate::BoundsMemo`] instead of redoing the Table 3 analysis.

use std::collections::HashMap;
use std::sync::Arc;

use gpumc_cat::{CatModel, DefBody, RelExpr, SetExpr};
use gpumc_exec::{EventSet, Relation};
use gpumc_ir::{Arch, EventGraph, EventId, EventKind, Scope, Tag};

/// The owned result of the relation analysis: static bounds for the base
/// sets and all relations of a model, detached from the graph borrow so
/// they can be cached and shared across threads.
#[derive(Debug)]
pub struct StaticBounds {
    /// When false, alias-based pruning was disabled (ablation mode).
    precise: bool,
    sets: HashMap<String, EventSet>,
    upper: HashMap<String, Relation>,
    lower: HashMap<String, Relation>,
    /// Bounds for each model definition (indexed by DefId).
    def_upper: Vec<Option<Relation>>,
    def_lower: Vec<Option<Relation>>,
    def_sets: Vec<Option<EventSet>>,
}

/// Static bounds paired with the graph they were computed for.
#[derive(Debug)]
pub struct RelationAnalysis<'g> {
    graph: &'g EventGraph,
    bounds: Arc<StaticBounds>,
}

impl StaticBounds {
    /// Computes bounds for a graph under a model. `precise = false`
    /// disables the alias-based pruning of Table 3 (ablation mode).
    pub fn compute(graph: &EventGraph, model: &CatModel, precise: bool) -> StaticBounds {
        let mut ctx = Ctx {
            graph,
            b: StaticBounds {
                precise,
                sets: HashMap::new(),
                upper: HashMap::new(),
                lower: HashMap::new(),
                def_upper: Vec::new(),
                def_lower: Vec::new(),
                def_sets: Vec::new(),
            },
        };
        ctx.compute_sets();
        ctx.compute_base();
        ctx.compute_defs(model);
        ctx.b
    }

    /// Whether alias-based pruning was enabled.
    pub fn precise(&self) -> bool {
        self.precise
    }

    /// Static members of a base set.
    pub fn set(&self, name: &str) -> Option<&EventSet> {
        self.sets.get(name)
    }

    /// Upper bound of a base relation.
    pub fn base_upper(&self, name: &str) -> Option<&Relation> {
        self.upper.get(name)
    }

    /// Lower bound of a base relation.
    pub fn base_lower(&self, name: &str) -> Option<&Relation> {
        self.lower.get(name)
    }

    /// Upper bound of a model definition (relations only).
    pub fn def_upper(&self, id: usize) -> Option<&Relation> {
        self.def_upper.get(id).and_then(|r| r.as_ref())
    }

    /// Static member set of a set-kinded definition.
    pub fn def_set(&self, id: usize) -> Option<&EventSet> {
        self.def_sets.get(id).and_then(|s| s.as_ref())
    }

    fn eval_set(&self, g: &EventGraph, e: &SetExpr) -> EventSet {
        let n = g.n_events();
        match e {
            SetExpr::Base(name) => self
                .sets
                .get(name)
                .cloned()
                .unwrap_or_else(|| EventSet::empty(n)),
            SetExpr::Ref(id) => self.def_sets[*id].clone().expect("set def"),
            SetExpr::Universe => EventSet::full(n),
            SetExpr::Union(a, b) => self.eval_set(g, a).union(&self.eval_set(g, b)),
            SetExpr::Inter(a, b) => self.eval_set(g, a).inter(&self.eval_set(g, b)),
            SetExpr::Diff(a, b) => self.eval_set(g, a).diff(&self.eval_set(g, b)),
            SetExpr::Domain(r) => self.eval_rel(g, r, true).domain(),
            SetExpr::Range(r) => self.eval_rel(g, r, true).range(),
        }
    }

    /// Evaluates a relation expression to its upper (`upper == true`) or
    /// lower bound.
    fn eval_rel(&self, g: &EventGraph, e: &RelExpr, upper: bool) -> Relation {
        let n = g.n_events();
        match e {
            RelExpr::Base(name) => {
                let map = if upper { &self.upper } else { &self.lower };
                map.get(name).cloned().unwrap_or_else(|| Relation::empty(n))
            }
            RelExpr::Ref(id) => if upper {
                self.def_upper[*id].clone()
            } else {
                self.def_lower[*id].clone()
            }
            .expect("relation def"),
            RelExpr::Id => Relation::identity(n),
            RelExpr::IdSet(s) => Relation::identity_on(&self.eval_set(g, s)),
            RelExpr::Cross(a, b) => {
                let r = Relation::cross(&self.eval_set(g, a), &self.eval_set(g, b));
                // Remove mutually exclusive pairs in both bounds.
                self.filter_coexist(g, r)
            }
            RelExpr::Union(a, b) => self
                .eval_rel(g, a, upper)
                .union(&self.eval_rel(g, b, upper)),
            RelExpr::Inter(a, b) => self
                .eval_rel(g, a, upper)
                .inter(&self.eval_rel(g, b, upper)),
            // diff mixes bounds: upper(a \ b) = upper(a) \ lower(b).
            RelExpr::Diff(a, b) => self
                .eval_rel(g, a, upper)
                .diff(&self.eval_rel(g, b, !upper)),
            RelExpr::Seq(a, b) => {
                let ra = self.eval_rel(g, a, upper);
                let rb = self.eval_rel(g, b, upper);
                if upper {
                    ra.compose(&rb)
                } else {
                    self.guaranteed_compose(g, &ra, &rb)
                }
            }
            RelExpr::Inverse(a) => self.eval_rel(g, a, upper).inverse(),
            RelExpr::Plus(a) => {
                let r = self.eval_rel(g, a, upper);
                if upper {
                    r.transitive_closure()
                } else {
                    r // conservative lower bound
                }
            }
            RelExpr::Star(a) => {
                let r = self.eval_rel(g, a, upper);
                if upper {
                    r.refl_transitive_closure()
                } else {
                    r.refl_closure()
                }
            }
            RelExpr::Opt(a) => self.eval_rel(g, a, upper).refl_closure(),
        }
    }

    fn filter_coexist(&self, g: &EventGraph, r: Relation) -> Relation {
        let n = g.n_events();
        let mut out = Relation::empty(n);
        for (a, b) in r.iter() {
            if g.can_coexist(a, b) {
                out.insert(a, b);
            }
        }
        out
    }

    /// Lower-bound composition: the midpoint must be guaranteed to
    /// execute whenever both endpoints do (init block or an ancestor
    /// block of one endpoint).
    fn guaranteed_compose(&self, g: &EventGraph, a: &Relation, b: &Relation) -> Relation {
        let n = g.n_events();
        let mut out = Relation::empty(n);
        for (x, m) in a.iter() {
            for (m2, y) in b.iter() {
                if m != m2 {
                    continue;
                }
                let mb = g.event(m).block;
                let guaranteed = mb == 0
                    || g.is_ancestor(mb, g.event(x).block)
                    || g.is_ancestor(mb, g.event(y).block);
                if guaranteed && g.can_coexist(x, y) {
                    out.insert(x, y);
                }
            }
        }
        out
    }
}

/// The computation context: a graph borrow plus the bounds under
/// construction.
struct Ctx<'g> {
    graph: &'g EventGraph,
    b: StaticBounds,
}

impl Ctx<'_> {
    fn compute_sets(&mut self) {
        let g = self.graph;
        let n = g.n_events();
        for tag in Tag::ALL {
            let mut s = EventSet::empty(n);
            for e in g.events() {
                if e.tags.contains(tag) {
                    s.insert(e.id);
                }
            }
            self.b.sets.insert(tag.name().to_string(), s);
        }
        let m = self.b.sets["R"].union(&self.b.sets["W"]);
        self.b.sets.insert("M".into(), m);
        self.b.sets.insert("CBAR".into(), self.b.sets["B"].clone());
        self.b.sets.insert("I".into(), self.b.sets["IW"].clone());
        self.b.sets.insert("_".into(), EventSet::full(n));
    }

    fn pairs(&self, mut f: impl FnMut(EventId, EventId) -> bool) -> Relation {
        let g = self.graph;
        let n = g.n_events();
        let mut r = Relation::empty(n);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let (ea, eb) = (EventId(a), EventId(b));
                if a != b && g.can_coexist(ea, eb) && f(ea, eb) {
                    r.insert(ea, eb);
                }
            }
        }
        r
    }

    fn event_scope(&self, e: EventId) -> Option<Scope> {
        let tags = self.graph.event(e).tags;
        let list: &[(Tag, Scope)] = match self.graph.arch {
            Arch::Ptx => &[
                (Tag::CTA, Scope::Cta),
                (Tag::GPU, Scope::Gpu),
                (Tag::SYS, Scope::Sys),
            ],
            Arch::Vulkan => &[
                (Tag::SG, Scope::Sg),
                (Tag::WG, Scope::Wg),
                (Tag::QF, Scope::Qf),
                (Tag::DV, Scope::Dv),
            ],
        };
        list.iter()
            .find(|(t, _)| tags.contains(*t))
            .map(|&(_, s)| s)
    }

    fn same_scope(&self, a: EventId, b: EventId, scope: Scope) -> bool {
        let g = self.graph;
        let (Some(ta), Some(tb)) = (g.event(a).thread, g.event(b).thread) else {
            return false;
        };
        if scope.arch() != g.arch {
            return false;
        }
        g.threads()[ta].pos.same_scope(&g.threads()[tb].pos, scope)
    }

    fn compute_base(&mut self) {
        let g = self.graph;
        let n = g.n_events();

        // po / int / ext — static.
        let po = self.pairs(|a, b| {
            matches!((g.event(a).thread, g.event(b).thread),
                (Some(ta), Some(tb)) if ta == tb)
                && g.event(a).po_index < g.event(b).po_index
        });
        let int = self.pairs(|a, b| {
            g.event(a).thread.is_some() && g.event(a).thread == g.event(b).thread
                || (g.event(a).thread.is_none() && g.event(b).thread.is_none())
        });
        let ext = self.pairs(|a, b| g.event(a).thread != g.event(b).thread);
        self.insert_static("po", po);
        self.insert_static("int", int);
        self.insert_static("ext", ext);

        // loc / vloc. In ablation mode (`!precise`) the may-alias pruning
        // is skipped: every memory pair stays in the upper bounds.
        let precise = self.b.precise;
        let loc_u = self.pairs(|a, b| {
            g.event(a).is_memory() && g.event(b).is_memory() && (!precise || g.may_alias(a, b))
        });
        let loc_l = self
            .pairs(|a, b| g.event(a).is_memory() && g.event(b).is_memory() && g.must_alias(a, b));
        self.b.upper.insert("loc".into(), loc_u);
        self.b.lower.insert("loc".into(), loc_l);
        let vloc_u = self.pairs(|a, b| {
            if !(g.event(a).is_memory() && g.event(b).is_memory()) {
                return false;
            }
            if !precise {
                return true;
            }
            let iw = g.event(a).tags.contains(Tag::IW) || g.event(b).tags.contains(Tag::IW);
            if iw {
                return g.may_alias(a, b);
            }
            g.virtual_loc(a) == g.virtual_loc(b) && g.may_alias(a, b)
        });
        let vloc_l = self.pairs(|a, b| g.same_virtual(a, b));
        self.b.upper.insert("vloc".into(), vloc_u);
        self.b.lower.insert("vloc".into(), vloc_l);

        // rf / co — decision relations; lower bounds empty (except the
        // init-first co edges, which always hold).
        let w = self.b.sets["W"].clone();
        let r = self.b.sets["R"].clone();
        let iw = self.b.sets["IW"].clone();
        let rf_u =
            self.pairs(|a, b| w.contains(a) && r.contains(b) && (!precise || g.may_alias(a, b)));
        self.b.upper.insert("rf".into(), rf_u);
        self.b.lower.insert("rf".into(), Relation::empty(n));
        let co_u = self.pairs(|a, b| {
            w.contains(a) && w.contains(b) && !iw.contains(b) && (!precise || g.may_alias(a, b))
        });
        let co_l = self
            .pairs(|a, b| iw.contains(a) && w.contains(b) && !iw.contains(b) && g.must_alias(a, b));
        self.b.upper.insert("co".into(), co_u);
        self.b.lower.insert("co".into(), co_l);

        // rmw — static pairs.
        let rmw = self.pairs(|a, b| match &g.event(b).kind {
            EventKind::RmwStore { read, .. } => *read == a,
            _ => false,
        });
        self.insert_static("rmw", rmw);

        // Dependencies — static.
        let (addr, data, ctrl) = self.dependencies();
        self.insert_static("addr", addr);
        self.insert_static("data", data);
        self.insert_static("ctrl", ctrl);

        // Scope relations — static (Table 3 rows 1-2).
        let sr = if g.arch == Arch::Ptx {
            self.pairs(|a, b| {
                let (Some(sa), Some(sb)) = (self.event_scope(a), self.event_scope(b)) else {
                    return false;
                };
                self.same_scope(a, b, sa) && self.same_scope(a, b, sb)
            })
        } else {
            Relation::empty(n)
        };
        self.insert_static("sr", sr);
        for (name, scope) in [
            ("scta", Scope::Cta),
            ("ssg", Scope::Sg),
            ("swg", Scope::Wg),
            ("sqf", Scope::Qf),
        ] {
            let rel = self.pairs(|a, b| self.same_scope(a, b, scope));
            self.insert_static(name, rel);
        }
        let ssw = self.pairs(|a, b| {
            g.ssw_pairs
                .iter()
                .any(|&(t1, t2)| g.event(a).thread == Some(t1) && g.event(b).thread == Some(t2))
        });
        self.insert_static("ssw", ssw);

        // Barriers (Table 3 rows 3-4): ids may be dynamic, so the bounds
        // differ when a static comparison is impossible.
        let bar = self.b.sets["B"].clone();
        let static_id = |e: EventId| match &g.event(e).kind {
            EventKind::Barrier { id, .. } => id.as_const(),
            _ => None,
        };
        let syncbar_u = self.pairs(|a, b| {
            bar.contains(a)
                && bar.contains(b)
                && match (static_id(a), static_id(b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => true,
                }
        });
        let syncbar_l = self.pairs(|a, b| {
            bar.contains(a)
                && bar.contains(b)
                && matches!((static_id(a), static_id(b)), (Some(x), Some(y)) if x == y)
        });
        let scta = self.b.upper["scta"].clone();
        self.b
            .upper
            .insert("sync_barrier".into(), syncbar_u.inter(&scta.refl_closure()));
        self.b
            .lower
            .insert("sync_barrier".into(), syncbar_l.inter(&scta.refl_closure()));
        self.b.upper.insert("syncbar".into(), syncbar_u);
        self.b.lower.insert("syncbar".into(), syncbar_l);

        // sync_fence (Table 3 row 5): no lower bound; the upper bound is
        // the sr-related SC fence pairs.
        let f = self.b.sets["F"].clone();
        let sc = self.b.sets["SC"].clone();
        let sr_u = self.b.upper["sr"].clone();
        let sync_fence_u = self.pairs(|a, b| {
            f.contains(a)
                && sc.contains(a)
                && f.contains(b)
                && sc.contains(b)
                && sr_u.contains(a, b)
        });
        self.b.upper.insert("sync_fence".into(), sync_fence_u);
        self.b.lower.insert("sync_fence".into(), Relation::empty(n));
    }

    fn insert_static(&mut self, name: &str, r: Relation) {
        self.b.upper.insert(name.to_string(), r.clone());
        self.b.lower.insert(name.to_string(), r);
    }

    fn dependencies(&self) -> (Relation, Relation, Relation) {
        let g = self.graph;
        let n = g.n_events();
        let mut addr = Relation::empty(n);
        let mut data = Relation::empty(n);
        let mut ctrl = Relation::empty(n);
        for ev in g.events() {
            let e = ev.id;
            if let Some(a) = ev.kind.addr() {
                let mut rs = Vec::new();
                a.index.reads(&mut rs);
                for r in rs {
                    addr.insert(r, e);
                }
            }
            match &ev.kind {
                EventKind::Store { value, .. } => {
                    let mut rs = Vec::new();
                    value.reads(&mut rs);
                    for r in rs {
                        data.insert(r, e);
                    }
                }
                EventKind::RmwStore {
                    value,
                    cas_expected,
                    ..
                } => {
                    let mut rs = Vec::new();
                    value.reads(&mut rs);
                    if let Some(c) = cas_expected {
                        c.reads(&mut rs);
                    }
                    for r in rs {
                        data.insert(r, e);
                    }
                }
                _ => {}
            }
            for (guard, _) in g.guard_chain(ev.block) {
                let mut rs = Vec::new();
                guard.a.reads(&mut rs);
                guard.b.reads(&mut rs);
                for r in rs {
                    if r != e {
                        ctrl.insert(r, e);
                    }
                }
            }
        }
        (addr, data, ctrl)
    }

    // -- derived bounds ---------------------------------------------------

    fn compute_defs(&mut self, model: &CatModel) {
        let n = self.graph.n_events();
        for (i, def) in model.defs().iter().enumerate() {
            debug_assert_eq!(i, self.b.def_upper.len());
            match &def.body {
                DefBody::Set(s) => {
                    let set = self.b.eval_set(self.graph, s);
                    self.b.def_sets.push(Some(set));
                    self.b.def_upper.push(None);
                    self.b.def_lower.push(None);
                }
                DefBody::Rel(r) => {
                    if def.rec_group.is_some() {
                        // Kleene-iterate the whole group on upper bounds.
                        self.b.def_sets.push(None);
                        self.b.def_upper.push(Some(Relation::empty(n)));
                        self.b.def_lower.push(Some(Relation::empty(n)));
                        // Iterate only once the group is fully registered:
                        // handled below by re-scanning groups.
                        let _ = r;
                    } else {
                        let u = self.b.eval_rel(self.graph, r, true);
                        let l = self.b.eval_rel(self.graph, r, false);
                        self.b.def_sets.push(None);
                        self.b.def_upper.push(Some(u));
                        self.b.def_lower.push(Some(l));
                    }
                }
            }
        }
        // Fixpoint for recursive groups (uppers only; lowers stay empty).
        let groups: Vec<usize> = model
            .defs()
            .iter()
            .filter_map(|d| d.rec_group)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for group in groups {
            loop {
                let mut changed = false;
                for (i, def) in model.defs().iter().enumerate() {
                    if def.rec_group != Some(group) {
                        continue;
                    }
                    let DefBody::Rel(body) = &def.body else {
                        continue;
                    };
                    let next = self.b.eval_rel(self.graph, body, true);
                    if self.b.def_upper[i].as_ref() != Some(&next) {
                        self.b.def_upper[i] = Some(next);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
    }
}

impl<'g> RelationAnalysis<'g> {
    /// Computes bounds for a graph under a model.
    pub fn new(graph: &'g EventGraph, model: &CatModel) -> RelationAnalysis<'g> {
        RelationAnalysis::new_with(graph, model, true)
    }

    /// Like [`RelationAnalysis::new`], optionally disabling the
    /// alias-based pruning of Table 3 (`precise = false`) for the
    /// relation-analysis ablation.
    pub fn new_with(
        graph: &'g EventGraph,
        model: &CatModel,
        precise: bool,
    ) -> RelationAnalysis<'g> {
        RelationAnalysis {
            graph,
            bounds: Arc::new(StaticBounds::compute(graph, model, precise)),
        }
    }

    /// Pairs previously computed bounds with a (structurally identical)
    /// graph — the sharing entry point used by [`crate::BoundsMemo`].
    ///
    /// The caller is responsible for `bounds` having been computed on a
    /// graph with the same structure (same events/blocks/threads), which
    /// the memo guarantees through its fingerprint key.
    pub fn from_shared(graph: &'g EventGraph, bounds: Arc<StaticBounds>) -> RelationAnalysis<'g> {
        RelationAnalysis { graph, bounds }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g EventGraph {
        self.graph
    }

    /// The shared bounds handle.
    pub fn bounds(&self) -> &Arc<StaticBounds> {
        &self.bounds
    }

    /// Static members of a base set.
    pub fn set(&self, name: &str) -> Option<&EventSet> {
        self.bounds.set(name)
    }

    /// Upper bound of a base relation.
    pub fn base_upper(&self, name: &str) -> Option<&Relation> {
        self.bounds.base_upper(name)
    }

    /// Lower bound of a base relation.
    pub fn base_lower(&self, name: &str) -> Option<&Relation> {
        self.bounds.base_lower(name)
    }

    /// Upper bound of a model definition (relations only).
    pub fn def_upper(&self, id: usize) -> Option<&Relation> {
        self.bounds.def_upper(id)
    }

    /// Static member set of a set-kinded definition.
    pub fn def_set(&self, id: usize) -> Option<&EventSet> {
        self.bounds.def_set(id)
    }

    /// Upper bound of an arbitrary relation expression.
    pub fn upper_of(&self, e: &RelExpr) -> Relation {
        self.bounds.eval_rel(self.graph, e, true)
    }

    /// Lower bound of an arbitrary relation expression.
    pub fn lower_of(&self, e: &RelExpr) -> Relation {
        self.bounds.eval_rel(self.graph, e, false)
    }

    /// Static members of an arbitrary set expression.
    pub fn set_of(&self, e: &SetExpr) -> EventSet {
        self.bounds.eval_set(self.graph, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumc_ir::{compile, unroll};

    fn mp_graph() -> EventGraph {
        let src = r#"
PTX MP
{ x = 0; flag = 0; }
P0@cta 0,gpu 0          | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1     | ld.acquire.gpu r0, flag ;
st.release.gpu flag, 1  | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;
        let p = gpumc_litmus::parse(src).unwrap();
        compile(&unroll(&p, 1).unwrap())
    }

    #[test]
    fn static_relations_have_equal_bounds() {
        let g = mp_graph();
        let model = gpumc_cat::parse("let x = po | sr | scta\nacyclic x").unwrap();
        let a = RelationAnalysis::new(&g, &model);
        for name in [
            "po", "sr", "scta", "int", "ext", "rmw", "addr", "data", "ctrl",
        ] {
            assert_eq!(
                a.base_upper(name),
                a.base_lower(name),
                "{name} bounds must coincide"
            );
        }
    }

    #[test]
    fn rf_upper_respects_aliasing() {
        let g = mp_graph();
        let model = gpumc_cat::parse("acyclic rf").unwrap();
        let a = RelationAnalysis::new(&g, &model);
        let rf = a.base_upper("rf").unwrap();
        // Each read can read from exactly: the init write and the one
        // store to its location.
        for (w, r) in rf.iter() {
            assert!(g.may_alias(w, r));
            assert!(g.event(w).tags.contains(Tag::W));
            assert!(g.event(r).tags.contains(Tag::R));
        }
        assert_eq!(rf.len(), 4);
        assert!(a.base_lower("rf").unwrap().is_empty());
    }

    #[test]
    fn co_lower_contains_init_edges() {
        let g = mp_graph();
        let model = gpumc_cat::parse("acyclic co").unwrap();
        let a = RelationAnalysis::new(&g, &model);
        let lower = a.base_lower("co").unwrap();
        assert_eq!(lower.len(), 2, "IW -> store for each location");
        let upper = a.base_upper("co").unwrap();
        assert!(upper.len() >= lower.len());
        for (x, y) in upper.iter() {
            assert!(!g.event(y).tags.contains(Tag::IW), "nothing co-before init");
            let _ = x;
        }
    }

    #[test]
    fn sr_uses_instruction_scopes() {
        let g = mp_graph();
        let model = gpumc_cat::parse("acyclic sr").unwrap();
        let a = RelationAnalysis::new(&g, &model);
        let sr = a.base_upper("sr").unwrap();
        // Both threads use .gpu scope and share gpu 0: all cross/intra
        // pairs of scoped events are sr-related.
        assert!(!sr.is_empty());
        // scta only relates same-CTA events; threads are in different CTAs.
        let scta = a.base_upper("scta").unwrap();
        for (x, y) in scta.iter() {
            assert_eq!(g.event(x).thread, g.event(y).thread);
        }
    }

    #[test]
    fn derived_upper_bounds_propagate() {
        let g = mp_graph();
        let model =
            gpumc_cat::parse("let fr = rf^-1; co\nlet com = rf | co | fr\nacyclic com | po")
                .unwrap();
        let a = RelationAnalysis::new(&g, &model);
        let com_id = model.def_id("com").unwrap();
        let com = a.def_upper(com_id).unwrap();
        let fr_id = model.def_id("fr").unwrap();
        let fr = a.def_upper(fr_id).unwrap();
        assert!(!fr.is_empty());
        for (x, y) in fr.iter() {
            assert!(com.contains(x, y), "fr ⊆ com");
        }
    }

    #[test]
    fn diff_uses_opposite_bound() {
        // co \ co over bounds: upper(a\b) = upper(a) \ lower(b) keeps the
        // unordered write pairs, while the exact value would be empty.
        let g = mp_graph();
        let model = gpumc_cat::parse("let x = co \\ co\nacyclic x").unwrap();
        let a = RelationAnalysis::new(&g, &model);
        let x = a.def_upper(model.def_id("x").unwrap()).unwrap();
        // IW→store edges are in the lower bound, so they disappear;
        // store-store pairs (same loc) remain possible... but MP has one
        // store per location, so x is empty here.
        assert!(x.len() <= a.base_upper("co").unwrap().len());
    }

    #[test]
    fn recursive_group_bounds_reach_fixpoint() {
        let g = mp_graph();
        let model = gpumc_cat::parse("let rec obs = rf | (obs; rmw; obs)\nacyclic obs").unwrap();
        let a = RelationAnalysis::new(&g, &model);
        let obs = a.def_upper(model.def_id("obs").unwrap()).unwrap();
        let rf = a.base_upper("rf").unwrap();
        for (x, y) in rf.iter() {
            assert!(obs.contains(x, y));
        }
    }

    #[test]
    fn shared_bounds_answer_like_fresh_ones() {
        let g = mp_graph();
        let model = gpumc_cat::parse("let fr = rf^-1; co\nacyclic fr | po").unwrap();
        let fresh = RelationAnalysis::new(&g, &model);
        let shared = RelationAnalysis::from_shared(&g, Arc::clone(fresh.bounds()));
        for name in ["po", "rf", "co", "loc", "vloc"] {
            assert_eq!(fresh.base_upper(name), shared.base_upper(name));
            assert_eq!(fresh.base_lower(name), shared.base_lower(name));
        }
        let fr = model.def_id("fr").unwrap();
        assert_eq!(fresh.def_upper(fr), shared.def_upper(fr));
    }
}
