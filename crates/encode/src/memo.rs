//! A memo for relation-analysis static bounds.
//!
//! Verifying one litmus test usually encodes the *same* (program, bound)
//! graph several times — once per checked property (safety, liveness,
//! DRF) — and each encoding used to redo the full Table 3 bounds
//! computation. [`BoundsMemo`] caches the owned [`StaticBounds`] keyed by
//! a structural fingerprint of the graph plus the model and the precision
//! flag, so the analysis runs once and every later encoding shares it.
//!
//! Bounds hold O(n²)-bitmap relations per graph, so the memo is opt-in
//! and caller-owned rather than a process-wide static: batch drivers
//! create one memo per test (or per bounded batch) and drop it when done,
//! keeping peak memory proportional to in-flight work.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gpumc_cat::CatModel;
use gpumc_ir::EventGraph;

use crate::bounds::StaticBounds;

/// Cache key: (graph fingerprint, model fingerprint, precise flag).
type Key = (u64, u64, bool);

/// A thread-safe cache of relation-analysis bounds.
///
/// Cheap to create (`const`-initialized, no allocation until first use)
/// and safe to share across worker threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct BoundsMemo {
    map: Mutex<BTreeMap<Key, Arc<StaticBounds>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl BoundsMemo {
    /// An empty memo.
    pub const fn new() -> BoundsMemo {
        BoundsMemo {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Returns the cached bounds for `(graph, model, precise)`, computing
    /// and inserting them on first request.
    ///
    /// The computation runs outside the lock, so a slow analysis never
    /// blocks unrelated lookups; if two threads race on the same key the
    /// first insertion wins and both get the same `Arc`.
    pub fn get_or_compute(
        &self,
        graph: &EventGraph,
        model: &CatModel,
        precise: bool,
    ) -> Arc<StaticBounds> {
        let key = (graph.fingerprint(), model_fingerprint(model), precise);
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(StaticBounds::compute(graph, model, precise));
        let mut map = self.map.lock().unwrap();
        Arc::clone(map.entry(key).or_insert(computed))
    }

    /// Number of lookups answered from cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute bounds.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the memo has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Structural fingerprint of a model (same caveats as
/// [`EventGraph::fingerprint`]: process-local, never persist).
fn model_fingerprint(model: &CatModel) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{model:?}").hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumc_ir::{compile, unroll};

    fn graph(src: &str, bound: u32) -> EventGraph {
        let p = gpumc_litmus::parse(src).unwrap();
        compile(&unroll(&p, bound).unwrap())
    }

    const MP: &str = "PTX MP\n{ x = 0; flag = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | ld.weak r0, flag ;\n\
st.weak flag, 1 | ld.weak r1, x ;\n\
exists (P1:r0 == 1 /\\ P1:r1 == 0)";

    #[test]
    fn same_graph_computes_once() {
        let memo = BoundsMemo::new();
        let g = graph(MP, 1);
        let model = gpumc_models::ptx60();
        let a = memo.get_or_compute(&g, &model, true);
        let b = memo.get_or_compute(&g, &model, true);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the bounds");
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn recompiled_graph_still_hits() {
        // The suite runner checks several properties of one test, each
        // compiling its own EventGraph; equal structure must share.
        let memo = BoundsMemo::new();
        let model = gpumc_models::ptx60();
        let g1 = graph(MP, 1);
        let g2 = graph(MP, 1);
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        let a = memo.get_or_compute(&g1, &model, true);
        let b = memo.get_or_compute(&g2, &model, true);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let memo = BoundsMemo::new();
        let model60 = gpumc_models::ptx60();
        let model75 = gpumc_models::ptx75();
        let g1 = graph(MP, 1);
        // MP is loop-free, so a higher bound unrolls to the same graph —
        // and must therefore share the memo entry.
        assert_eq!(graph(MP, 2).fingerprint(), g1.fingerprint());
        let sb: &str = "PTX SB\n{ x = 0; y = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | st.weak y, 1 ;\n\
ld.weak r0, y | ld.weak r1, x ;\n\
exists (P0:r0 == 0 /\\ P1:r1 == 0)";
        let g2 = graph(sb, 1);
        assert_ne!(
            g1.fingerprint(),
            g2.fingerprint(),
            "program changes the graph"
        );
        let _ = memo.get_or_compute(&g1, &model60, true);
        let _ = memo.get_or_compute(&g1, &model60, false);
        let _ = memo.get_or_compute(&g1, &model75, true);
        let _ = memo.get_or_compute(&g2, &model60, true);
        assert_eq!(memo.misses(), 4);
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.len(), 4);
    }

    #[test]
    fn memo_is_shareable_across_threads() {
        let memo = Arc::new(BoundsMemo::new());
        let model = gpumc_models::ptx60();
        let g = graph(MP, 1);
        let first = memo.get_or_compute(&g, &model, true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let b = memo.get_or_compute(&g, &model, true);
                    assert!(Arc::ptr_eq(&first, &b));
                });
            }
        });
        assert_eq!(memo.len(), 1);
    }
}
