//! An incremental query session: one encoding, many property queries.
//!
//! Verifying one litmus test asks up to three questions of the *same*
//! bounded event graph — is the assertion reachable, can a thread get
//! stuck (liveness), and does a flagged axiom such as the Vulkan `dr`
//! data-race detector fire. Encoding the program semantics and the
//! `.cat` model once and re-solving per property is sound because every
//! query in [`Encoding`] is *assumption-guarded*: its clauses are gated
//! behind a fresh activation literal and posed via
//! `Solver::solve_with_assumptions`, so a later query sees earlier
//! query clauses only as satisfiable-by-deactivation noise while the
//! solver's learnt clauses (implied by the shared database) carry over.
//!
//! [`SolverSession`] packages that reuse: it owns the encoding, exposes
//! the property queries, and records a per-query [`QueryStats`] delta of
//! the shared solver's cumulative counters so callers can measure what
//! incrementality saves (e.g. a liveness query that starts with a
//! non-zero `learnt_before` is reusing the assertion query's learning).

use std::time::Instant;

use gpumc_cat::CatModel;
use gpumc_ir::{Condition, EventGraph};

use crate::encode::{encode, encode_memoized, EncodeError, EncodeOptions, Encoding, QueryResult};
use crate::memo::BoundsMemo;

/// Deltas of the shared solver's cumulative statistics over one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Conflicts spent answering this query.
    pub conflicts: u64,
    /// Decisions spent answering this query.
    pub decisions: u64,
    /// Unit propagations spent answering this query.
    pub propagations: u64,
    /// Live learnt clauses when the query started. Non-zero on a second
    /// or later query means earlier learning is being reused.
    pub learnt_before: usize,
    /// Live learnt clauses when the query finished.
    pub learnt_after: usize,
    /// Wall-clock time of the query (encode time excluded).
    pub time_us: u128,
}

impl QueryStats {
    /// Learnt clauses added by this query (saturating: database
    /// reduction on huge instances can shrink the live count).
    pub fn learnt_delta(&self) -> usize {
        self.learnt_after.saturating_sub(self.learnt_before)
    }
}

/// A labelled, per-query statistics record of a session.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// What was asked: `"assertion"`, `"liveness"`, `"flag:dr"`, ...
    pub label: String,
    /// The solver-counter deltas for that query.
    pub stats: QueryStats,
}

/// One encoding of a (graph, model) pair, ready to answer several
/// assumption-guarded property queries against a single solver.
///
/// # Example
///
/// ```
/// let src = "PTX MP\n{ x = 0; flag = 0; }\n\
/// P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
/// st.weak x, 1 | ld.weak r0, flag ;\n\
/// st.weak flag, 1 | ld.weak r1, x ;\n\
/// exists (P1:r0 == 1 /\\ P1:r1 == 0)";
/// let p = gpumc_litmus::parse(src).unwrap();
/// let g = gpumc_ir::compile(&gpumc_ir::unroll(&p, 1).unwrap());
/// let model = gpumc_models::ptx60();
/// let mut session = gpumc_encode::SolverSession::build(&g, &model, &Default::default()).unwrap();
/// assert!(session.find_assertion_witness().unwrap().found);
/// assert!(!session.find_liveness_violation().unwrap().found);
/// assert_eq!(session.queries().len(), 2);
/// ```
pub struct SolverSession<'g> {
    enc: Encoding<'g>,
    queries: Vec<QueryRecord>,
}

impl<'g> SolverSession<'g> {
    /// Encodes `graph` under `model` into a fresh session.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`encode`].
    pub fn build(
        graph: &'g EventGraph,
        model: &CatModel,
        opts: &EncodeOptions,
    ) -> Result<SolverSession<'g>, EncodeError> {
        Ok(SolverSession::from_encoding(encode(graph, model, opts)?))
    }

    /// Like [`SolverSession::build`] but sources relation-analysis
    /// bounds from `memo` (see [`encode_memoized`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`encode`].
    pub fn build_memoized(
        graph: &'g EventGraph,
        model: &CatModel,
        opts: &EncodeOptions,
        memo: &BoundsMemo,
    ) -> Result<SolverSession<'g>, EncodeError> {
        Ok(SolverSession::from_encoding(encode_memoized(
            graph, model, opts, memo,
        )?))
    }

    /// Wraps an already-built encoding.
    pub fn from_encoding(enc: Encoding<'g>) -> SolverSession<'g> {
        SolverSession {
            enc,
            queries: Vec::new(),
        }
    }

    /// Searches for a behaviour satisfying the test's assertion (or
    /// violating it, for `forall` tests). See
    /// [`Encoding::find_assertion_witness`].
    ///
    /// # Errors
    ///
    /// See [`Encoding::find_assertion_witness`].
    pub fn find_assertion_witness(&mut self) -> Result<QueryResult<'g>, EncodeError> {
        self.run("assertion", Encoding::find_assertion_witness)
    }

    /// Searches for a behaviour where `cond` (negated with `negate`)
    /// holds. See [`Encoding::find_condition`].
    ///
    /// # Errors
    ///
    /// See [`Encoding::find_assertion_witness`].
    pub fn find_condition(
        &mut self,
        cond: &Condition,
        negate: bool,
    ) -> Result<QueryResult<'g>, EncodeError> {
        self.run("condition", |enc| enc.find_condition(cond, negate))
    }

    /// Searches for a liveness violation. See
    /// [`Encoding::find_liveness_violation`].
    ///
    /// # Errors
    ///
    /// See [`Encoding::find_assertion_witness`].
    pub fn find_liveness_violation(&mut self) -> Result<QueryResult<'g>, EncodeError> {
        self.run("liveness", Encoding::find_liveness_violation)
    }

    /// Searches for a behaviour raising the model flag `name`. See
    /// [`Encoding::find_flag`].
    ///
    /// # Errors
    ///
    /// See [`Encoding::find_flag`].
    pub fn find_flag(&mut self, name: &str) -> Result<QueryResult<'g>, EncodeError> {
        self.run(&format!("flag:{name}"), |enc| enc.find_flag(name))
    }

    /// Whether the model defines the flagged relation `name` (a
    /// [`SolverSession::find_flag`] query on it can succeed).
    pub fn has_flag(&self, name: &str) -> bool {
        self.enc.has_flag(name)
    }

    /// Per-query solver-counter deltas, in query order.
    pub fn queries(&self) -> &[QueryRecord] {
        &self.queries
    }

    /// The record of the most recent query.
    pub fn last_query(&self) -> Option<&QueryRecord> {
        self.queries.last()
    }

    /// Variables in the shared formula (grows as queries add gates).
    pub fn num_vars(&self) -> usize {
        self.enc.num_vars()
    }

    /// Clauses in the shared formula (grows as queries add gates).
    pub fn num_clauses(&self) -> usize {
        self.enc.num_clauses()
    }

    /// The underlying encoding (diagnostics).
    pub fn encoding(&self) -> &Encoding<'g> {
        &self.enc
    }

    /// Installs (or clears) a cancellation token polled during every
    /// query of this session (see [`Encoding::set_cancel_token`]).
    pub fn set_cancel_token(&mut self, token: Option<gpumc_sat::CancelToken>) {
        self.enc.set_cancel_token(token);
    }

    /// Limits SAT conflicts per query (see
    /// [`Encoding::set_conflict_budget`]).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.enc.set_conflict_budget(budget);
    }

    /// Statistics from CNF simplification during build, or `None` when
    /// it was disabled (see [`EncodeOptions::simplify`]).
    pub fn simplify_stats(&self) -> Option<gpumc_sat::SimplifyStats> {
        self.enc.simplify_stats()
    }

    /// Overrides the parallel-solve policy for subsequent queries of
    /// this session (see [`Encoding::set_parallel`]).
    pub fn set_parallel(&mut self, policy: gpumc_sat::ParallelPolicy) {
        self.enc.set_parallel(policy);
    }

    /// Aggregate portfolio statistics across this session's parallel
    /// queries, or `None` when every query solved sequentially.
    pub fn portfolio_stats(&self) -> Option<gpumc_sat::PortfolioStats> {
        self.enc.portfolio_stats()
    }

    /// Microseconds spent on relation-analysis bounds during build.
    pub fn bounds_time_us(&self) -> u64 {
        self.enc.bounds_time_us()
    }

    /// Microseconds spent building the SAT encoding during build.
    pub fn encode_time_us(&self) -> u64 {
        self.enc.encode_time_us()
    }

    fn run<F>(&mut self, label: &str, query: F) -> Result<QueryResult<'g>, EncodeError>
    where
        F: FnOnce(&mut Encoding<'g>) -> Result<QueryResult<'g>, EncodeError>,
    {
        let before = self.enc.solver_stats();
        let start = Instant::now();
        let result = query(&mut self.enc);
        let after = self.enc.solver_stats();
        // Failed queries (e.g. a flag the model does not define) touch
        // nothing in the solver: keep the ledger to answered queries.
        if result.is_ok() {
            self.queries.push(QueryRecord {
                label: label.to_string(),
                stats: QueryStats {
                    conflicts: after.conflicts - before.conflicts,
                    decisions: after.decisions - before.decisions,
                    propagations: after.propagations - before.propagations,
                    learnt_before: before.learnt,
                    learnt_after: after.learnt,
                    time_us: start.elapsed().as_micros(),
                },
            });
        }
        result
    }
}

impl std::fmt::Debug for SolverSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverSession")
            .field("vars", &self.num_vars())
            .field("clauses", &self.num_clauses())
            .field("queries", &self.queries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = "PTX MP\n{ x = 0; flag = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | ld.weak r0, flag ;\n\
st.weak flag, 1 | ld.weak r1, x ;\n\
exists (P1:r0 == 1 /\\ P1:r1 == 0)";

    fn graph(src: &str, bound: u32) -> EventGraph {
        let p = gpumc_litmus::parse(src).unwrap();
        gpumc_ir::compile(&gpumc_ir::unroll(&p, bound).unwrap())
    }

    #[test]
    fn session_answers_all_three_properties_from_one_encoding() {
        let g = graph(MP, 1);
        let model = gpumc_models::ptx60();
        let mut s = SolverSession::build(&g, &model, &Default::default()).unwrap();
        let vars_after_encode = s.num_vars();
        assert!(s.find_assertion_witness().unwrap().found);
        assert!(!s.find_liveness_violation().unwrap().found);
        assert!(!s.has_flag("dr"), "PTX models define no dr flag");
        assert!(s.find_flag("dr").is_err());
        // All queries shared one formula: later queries only appended
        // gated clauses, they never rebuilt the base encoding.
        assert!(s.num_vars() >= vars_after_encode);
        assert_eq!(s.queries().len(), 2, "failed flag query records nothing");
        assert_eq!(s.queries()[0].label, "assertion");
        assert_eq!(s.queries()[1].label, "liveness");
    }

    #[test]
    fn later_queries_start_with_earlier_learning() {
        // Use a bound-2 spinloop test so the assertion query actually
        // learns something before liveness runs.
        let spin: &str = "PTX spin\n{ flag = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.relaxed.gpu flag, 1 | LC00: ;\n\
 | ld.relaxed.gpu r0, flag ;\n\
 | bne r0, 1, LC00 ;\n\
exists (P1:r0 == 1)";
        let g = graph(spin, 2);
        let model = gpumc_models::ptx60();
        let mut s = SolverSession::build(&g, &model, &Default::default()).unwrap();
        let _ = s.find_assertion_witness().unwrap();
        let _ = s.find_liveness_violation().unwrap();
        let q = s.queries();
        assert_eq!(q.len(), 2);
        assert_eq!(
            q[1].stats.learnt_before, q[0].stats.learnt_after,
            "liveness query must inherit the assertion query's learnt clauses"
        );
    }

    #[test]
    fn interrupted_query_reports_unknown_and_session_survives() {
        let g = graph(MP, 1);
        let model = gpumc_models::ptx60();
        let mut s = SolverSession::build(&g, &model, &Default::default()).unwrap();
        let token = gpumc_sat::CancelToken::new();
        token.cancel();
        s.set_cancel_token(Some(token));
        match s.find_assertion_witness() {
            Err(EncodeError::Unknown(reason)) => assert_eq!(reason, "cancelled"),
            other => panic!("expected Unknown, got {other:?}"),
        }
        assert_eq!(s.queries().len(), 0, "interrupted query records nothing");
        // The session answers correctly once the token is cleared.
        s.set_cancel_token(None);
        assert!(s.find_assertion_witness().unwrap().found);
        assert!(!s.find_liveness_violation().unwrap().found);
    }

    #[test]
    fn session_multi_query_agrees_with_simplification_off() {
        let g = graph(MP, 1);
        let model = gpumc_models::ptx60();
        let on = EncodeOptions::default();
        assert!(on.simplify, "simplification is on by default");
        let off = EncodeOptions {
            simplify: false,
            ..on.clone()
        };
        let mut s_on = SolverSession::build(&g, &model, &on).unwrap();
        let mut s_off = SolverSession::build(&g, &model, &off).unwrap();
        let st = s_on.simplify_stats().expect("stats recorded when on");
        assert!(st.clauses_after <= st.clauses_before);
        assert!(s_off.simplify_stats().is_none());
        assert_eq!(
            s_on.find_assertion_witness().unwrap().found,
            s_off.find_assertion_witness().unwrap().found
        );
        assert_eq!(
            s_on.find_liveness_violation().unwrap().found,
            s_off.find_liveness_violation().unwrap().found
        );
    }

    #[test]
    fn session_verdicts_match_fresh_encodings() {
        let g = graph(MP, 1);
        let model = gpumc_models::ptx60();
        let opts = EncodeOptions::default();
        let mut s = SolverSession::build(&g, &model, &opts).unwrap();
        let a = s.find_assertion_witness().unwrap().found;
        let l = s.find_liveness_violation().unwrap().found;
        let mut fresh_a = encode(&g, &model, &opts).unwrap();
        let mut fresh_l = encode(&g, &model, &opts).unwrap();
        assert_eq!(a, fresh_a.find_assertion_witness().unwrap().found);
        assert_eq!(l, fresh_l.find_liveness_violation().unwrap().found);
    }
}
