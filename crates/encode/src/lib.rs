//! The Dartagnan-style SAT engine: relation analysis and CNF encoding.
//!
//! The paper's tool encodes a program's semantics modulo a `.cat` model
//! as an SMT formula (§2.3, §6.3). This crate reproduces that pipeline on
//! top of the `gpumc-sat` solver:
//!
//! * [`RelationAnalysis`] — static lower/upper bounds for all base and
//!   derived relations (Table 3). Upper bounds prune variable creation;
//!   lower bounds let static relations be encoded as plain conjunctions
//!   of execution literals (Table 4's first row).
//! * [`Encoding`] — the CNF encoding: guarded control flow, bit-blasted
//!   data flow, decision variables for `rf`, the (partial for PTX, total
//!   for Vulkan) coherence order `co`, the runtime `sync_fence` order,
//!   gates for every derived relation of the model, and the axioms.
//!   Recursive definitions and closures use cyclic iff-gates; every model
//!   then satisfies `var ⊇ least fixpoint`, which is sound and complete
//!   here because all cat axioms (`empty`/`irreflexive`/`acyclic`) are
//!   anti-monotone in their relations and flags are asserted through
//!   negations (see DESIGN.md §"closure encoding").
//! * Queries — safety (`exists`/`forall` conditions), liveness (§6.4
//!   co-maximal stuck spinloops), and flagged detectors (data races).
//!   Every query is assumption-guarded (gated behind a fresh activation
//!   literal), so several properties can be posed against one encoding.
//! * [`SolverSession`] — the incremental query layer: owns one encoding,
//!   answers all of a test's property queries from the single shared
//!   solver, and records per-query [`QueryStats`] counter deltas.
//! * [`BoundsMemo`] — an opt-in cache of the (expensive, graph-sized)
//!   bounds so the several encodings of one test share a single
//!   relation analysis; see [`encode_memoized`].
//! * [`estimate_cost`] — a relative cost prediction (events² × bound ×
//!   engine weight) the serving layer uses for lane placement in its
//!   cost-aware scheduler.
//!
//! Every satisfying assignment is decoded into a concrete
//! [`gpumc_exec::Execution`] and *re-validated* with the explicit
//! interpreter before being reported, so the two engines cross-check each
//! other on every witness (the paper's Table 5 validation, continuously).

mod bounds;
mod cost;
mod encode;
mod memo;
mod session;

pub use bounds::{RelationAnalysis, StaticBounds};
pub use cost::{engine_weight, estimate_cost};
pub use encode::{
    encode, encode_memoized, encode_traced, EncodeError, EncodeOptions, Encoding, QueryResult,
};
pub use memo::BoundsMemo;
pub use session::{QueryRecord, QueryStats, SolverSession};
