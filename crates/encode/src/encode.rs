//! The CNF encoding of program semantics modulo a `.cat` model.

use std::collections::HashMap;
use std::time::Instant;

use gpumc_cat::{AxiomKind, CatModel, DefBody, RelExpr, SetExpr};
use gpumc_exec::{Execution, Interpreter, Relation, ThreadOutcome};
use gpumc_ir::{
    Arch, BlockId, CondAtom, Condition, EventGraph, EventId, EventKind, Tag, UTerm, Val,
};
use gpumc_sat::bv::BitVec;
use gpumc_sat::{Formula, Lit};

use crate::bounds::RelationAnalysis;

/// Options controlling the encoding.
#[derive(Debug, Clone)]
pub struct EncodeOptions {
    /// Bit-vector width for data values and array indices.
    pub bv_width: usize,
    /// Whether to prune the encoding with relation-analysis bounds
    /// (disable for the ablation benchmark).
    pub use_bounds: bool,
    /// Run SatELite-style CNF simplification (variable elimination,
    /// subsumption, equivalent-literal substitution) after building the
    /// encoding. Witness and query variables are frozen first, so
    /// verdicts and decoded witnesses are unaffected.
    pub simplify: bool,
    /// Print per-stage size diagnostics to stderr.
    pub trace: bool,
    /// Watchdog for the *encode* phase: polled between build stages and
    /// inside the axiom loop, so a deadline or cancellation fires during
    /// a pathological encoding too, not only once solving starts.
    pub cancel: Option<gpumc_sat::CancelToken>,
    /// Memory budget handed to the solver (see
    /// [`gpumc_sat::Solver::set_mem_budget_bytes`]); also checked between
    /// build stages so an encoding blow-up aborts with a classified
    /// [`EncodeError::Unknown`] instead of exhausting the host.
    pub mem_budget_bytes: Option<usize>,
    /// How queries on the encoding are solved: sequentially, with a
    /// diversified portfolio, or decided per query from the encoding's
    /// size (`Auto`). See [`gpumc_sat::ParallelPolicy`].
    pub parallel: gpumc_sat::ParallelPolicy,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            bv_width: 8,
            use_bounds: true,
            simplify: true,
            trace: false,
            cancel: None,
            mem_budget_bytes: None,
            parallel: gpumc_sat::ParallelPolicy::Off,
        }
    }
}

/// Encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The program/model uses an unsupported feature.
    Unsupported(String),
    /// A SAT witness failed re-validation by the interpreter — an
    /// internal consistency bug, never expected.
    WitnessMismatch(String),
    /// The query was interrupted (budget, cancellation, or deadline)
    /// before the solver reached a verdict. Carries the reason; the
    /// encoding remains usable for further queries.
    Unknown(String),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EncodeError::WitnessMismatch(m) => write!(f, "witness mismatch: {m}"),
            EncodeError::Unknown(m) => write!(f, "unknown: {m}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// The outcome of a query on an [`Encoding`].
#[derive(Debug)]
pub struct QueryResult<'g> {
    /// Whether a satisfying behaviour was found.
    pub found: bool,
    /// The decoded (and interpreter-validated) witness, when found.
    pub witness: Option<Execution<'g>>,
}

/// A relation encoded as literals per (may-)pair.
#[derive(Debug, Clone, Default)]
struct EncRel {
    pairs: HashMap<(u32, u32), Lit>,
}

impl EncRel {
    fn get(&self, a: EventId, b: EventId) -> Option<Lit> {
        self.pairs.get(&(a.0, b.0)).copied()
    }
}

/// A set encoded as literals per (may-)member.
#[derive(Debug, Clone, Default)]
struct EncSet {
    members: HashMap<u32, Lit>,
}

/// Like [`encode`] but prints per-stage variable counts to stderr
/// (diagnostics for the encoding-size experiments).
pub fn encode_traced<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &EncodeOptions,
) -> Result<Encoding<'g>, EncodeError> {
    let mut opts = opts.clone();
    opts.trace = true;
    encode(graph, model, &opts)
}

/// Builds the encoding of a graph under a model.
///
/// # Errors
///
/// Fails when the model uses features the encoder rejects (negated
/// non-flagged axioms); the shipped models are fully supported.
pub fn encode<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &EncodeOptions,
) -> Result<Encoding<'g>, EncodeError> {
    let t0 = Instant::now();
    let analysis = RelationAnalysis::new_with(graph, model, opts.use_bounds);
    let bounds_us = t0.elapsed().as_micros() as u64;
    let mut enc = build(graph, model, opts, analysis)?;
    enc.bounds_us = bounds_us;
    Ok(enc)
}

/// Like [`encode`], but sources the relation-analysis bounds from `memo`
/// so repeated encodings of the same (program, bound) graph — e.g. the
/// safety, liveness and DRF checks of one test — compute them only once.
///
/// # Errors
///
/// Same failure modes as [`encode`].
pub fn encode_memoized<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &EncodeOptions,
    memo: &crate::BoundsMemo,
) -> Result<Encoding<'g>, EncodeError> {
    let t0 = Instant::now();
    let bounds = memo.get_or_compute(graph, model, opts.use_bounds);
    let bounds_us = t0.elapsed().as_micros() as u64;
    let mut enc = build(
        graph,
        model,
        opts,
        RelationAnalysis::from_shared(graph, bounds),
    )?;
    enc.bounds_us = bounds_us;
    Ok(enc)
}

fn build<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &EncodeOptions,
    analysis: RelationAnalysis<'g>,
) -> Result<Encoding<'g>, EncodeError> {
    let mut enc = Encoding {
        graph,
        model: model.clone(),
        analysis,
        opts: opts.clone(),
        f: Formula::new(),
        exec_block: Vec::new(),
        exec_event: Vec::new(),
        values: Vec::new(),
        addr_bv: Vec::new(),
        rf: EncRel::default(),
        co: EncRel::default(),
        sync_fence: EncRel::default(),
        base_cache: HashMap::new(),
        pair_exec_cache: HashMap::new(),
        addr_eq_cache: HashMap::new(),
        def_rels: Vec::new(),
        def_sets: Vec::new(),
        final_reg_cache: HashMap::new(),
        completed: Vec::new(),
        flag_rels: HashMap::new(),
        positions: Vec::new(),
        simplify_stats: None,
        bounds_us: 0,
        encode_us: 0,
        portfolio: None,
    };
    let t0 = Instant::now();
    enc.build()?;
    enc.encode_us = t0.elapsed().as_micros() as u64;
    Ok(enc)
}

/// A built encoding, ready for queries.
///
/// # Example
///
/// ```
/// let src = "PTX MP\n{ x = 0; flag = 0; }\n\
/// P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
/// st.weak x, 1 | ld.weak r0, flag ;\n\
/// st.weak flag, 1 | ld.weak r1, x ;\n\
/// exists (P1:r0 == 1 /\\ P1:r1 == 0)";
/// let p = gpumc_litmus::parse(src).unwrap();
/// let g = gpumc_ir::compile(&gpumc_ir::unroll(&p, 1).unwrap());
/// let model = gpumc_models::ptx60();
/// let mut enc = gpumc_encode::encode(&g, &model, &Default::default()).unwrap();
/// let result = enc.find_assertion_witness().unwrap();
/// assert!(result.found, "weak MP allows the stale read");
/// ```
pub struct Encoding<'g> {
    graph: &'g EventGraph,
    model: CatModel,
    analysis: RelationAnalysis<'g>,
    opts: EncodeOptions,
    f: Formula,
    exec_block: Vec<Lit>,
    exec_event: Vec<Lit>,
    values: Vec<Option<BitVec>>,
    addr_bv: Vec<Option<BitVec>>,
    rf: EncRel,
    co: EncRel,
    sync_fence: EncRel,
    base_cache: HashMap<(String, u32, u32), Lit>,
    pair_exec_cache: HashMap<(u32, u32), Lit>,
    addr_eq_cache: HashMap<(u32, u32), Lit>,
    def_rels: Vec<Option<EncRel>>,
    def_sets: Vec<Option<EncSet>>,
    final_reg_cache: HashMap<(usize, u32), BitVec>,
    /// Per-thread "reached an End leaf" literal.
    completed: Vec<Lit>,
    /// Flagged-axiom label → encoded relation.
    flag_rels: HashMap<String, EncRel>,
    /// Lazily created acyclicity position vectors.
    positions: Vec<Option<BitVec>>,
    /// Statistics from CNF simplification, when it ran.
    simplify_stats: Option<gpumc_sat::SimplifyStats>,
    /// Time spent on relation-analysis bounds, microseconds.
    bounds_us: u64,
    /// Time spent building the SAT encoding, microseconds.
    encode_us: u64,
    /// Aggregate portfolio statistics across every parallel query run on
    /// this encoding (`None` until a portfolio solve happens).
    portfolio: Option<gpumc_sat::PortfolioStats>,
}

impl<'g> Encoding<'g> {
    /// Number of SAT variables in the encoding (for the scalability and
    /// ablation experiments).
    pub fn num_vars(&self) -> usize {
        self.f.solver().num_vars()
    }

    /// Number of problem clauses in the encoding.
    pub fn num_clauses(&self) -> usize {
        self.f.solver().num_clauses()
    }

    fn trace(&self, stage: &str) {
        if self.opts.trace {
            eprintln!(
                "[encode] {stage}: vars={} clauses={}",
                self.num_vars(),
                self.num_clauses()
            );
        }
    }

    // ------------------------------------------------------------------
    // construction
    // ------------------------------------------------------------------

    fn build(&mut self) -> Result<(), EncodeError> {
        if let Some(budget) = self.opts.mem_budget_bytes {
            self.f.solver_mut().set_mem_budget_bytes(Some(budget));
        }
        if let Some(token) = self.opts.cancel.clone() {
            self.f.solver_mut().set_cancel_token(Some(token));
        }
        self.trace("start");
        self.encode_control_flow();
        self.watchdog("control")?;
        self.trace("control");
        self.encode_data_flow();
        self.watchdog("data")?;
        self.trace("data");
        self.encode_exec_events();
        self.encode_rf();
        self.watchdog("rf")?;
        self.trace("rf");
        self.encode_co();
        self.watchdog("co")?;
        self.trace("co");
        self.encode_sync_fence();
        self.encode_model()?;
        self.watchdog("model")?;
        self.encode_completion();
        if let Some(filter) = &self.graph.filter.clone() {
            let lit = self.cond_lit(filter);
            self.f.assert_lit(lit);
        }
        if self.opts.simplify {
            self.simplify();
            self.trace("simplify");
        }
        Ok(())
    }

    /// Encode-phase watchdog, polled between build stages (and inside
    /// the axiom loop): surfaces cancellation/deadline expiry, a blown
    /// memory budget, and any armed `encode.build` fault as a classified
    /// [`EncodeError::Unknown`] — the encode phase can no longer hang
    /// past its deadline or grow without bound.
    pub(crate) fn watchdog(&mut self, stage: &str) -> Result<(), EncodeError> {
        match gpumc_fault::hit(gpumc_fault::points::ENCODE_BUILD) {
            Some(gpumc_fault::FaultSignal::SpuriousUnknown) => {
                return Err(EncodeError::Unknown(format!(
                    "injected fault (encode stage `{stage}`)"
                )));
            }
            Some(gpumc_fault::FaultSignal::AllocSpike(b)) => {
                let charged = gpumc_fault::materialize_spike(b);
                self.f.solver_mut().add_mem_ballast(charged);
            }
            None => {}
        }
        if let Some(i) = self.opts.cancel.as_ref().and_then(|c| c.check()) {
            return Err(EncodeError::Unknown(format!(
                "{i} (encode stage `{stage}`)"
            )));
        }
        if let Some(budget) = self.opts.mem_budget_bytes {
            if self.f.solver().bytes_in_use() > budget {
                return Err(EncodeError::Unknown(format!(
                    "memory budget exceeded (encode stage `{stage}`)"
                )));
            }
        }
        Ok(())
    }

    /// Runs CNF simplification over the built encoding.
    ///
    /// The frozen-variable contract: every literal a witness decode reads
    /// back, or that a later query (`find_condition`, liveness, flags)
    /// can place into a fresh clause or gate, is frozen first so the
    /// simplifier never eliminates or substitutes it. The gate caches
    /// hold output literals that *can* be eliminated, so they are
    /// cleared — queries rebuild those gates from frozen inputs.
    fn simplify(&mut self) {
        for &l in &self.exec_block {
            self.f.freeze_lit(l);
        }
        for &l in &self.exec_event {
            self.f.freeze_lit(l);
        }
        for &l in &self.completed {
            self.f.freeze_lit(l);
        }
        for bv in self.values.iter().chain(&self.addr_bv).flatten() {
            for &l in bv.bits() {
                self.f.freeze_lit(l);
            }
        }
        for rel in [&self.rf, &self.co, &self.sync_fence] {
            for &l in rel.pairs.values() {
                self.f.freeze_lit(l);
            }
        }
        for rel in self.flag_rels.values() {
            for &l in rel.pairs.values() {
                self.f.freeze_lit(l);
            }
        }
        self.base_cache.clear();
        self.pair_exec_cache.clear();
        self.addr_eq_cache.clear();
        self.final_reg_cache.clear();
        let stats = self.f.simplify();
        self.simplify_stats = Some(match self.simplify_stats.take() {
            None => stats,
            Some(prev) => prev.merged(&stats),
        });
    }

    fn encode_control_flow(&mut self) {
        // The init block and thread roots always execute and get the
        // shared constant-true literal, letting gate-level constant
        // folding collapse most of the encoding of loop-free threads.
        let always: Vec<bool> = (0..self.graph.blocks().len() as BlockId)
            .map(|b| b == 0 || self.graph.threads().iter().any(|t| t.root == b))
            .collect();
        for is_root in always {
            // Non-root blocks get a placeholder overwritten by the
            // branch-guard pass (every non-root block is a branch child).
            let l = if is_root {
                self.f.lit_true()
            } else {
                self.f.lit_false()
            };
            self.exec_block.push(l);
        }
    }

    fn encode_data_flow(&mut self) {
        let w = self.opts.bv_width;
        let n = self.graph.n_events();
        self.values = vec![None; n];
        self.addr_bv = vec![None; n];
        // Pass 1: reads get fresh vectors (their value is chosen by rf).
        let ids: Vec<EventId> = self.graph.events().iter().map(|e| e.id).collect();
        for &id in &ids {
            if matches!(
                self.graph.event(id).kind,
                EventKind::Load { .. } | EventKind::RmwLoad { .. }
            ) {
                self.values[id.index()] = Some(BitVec::fresh(&mut self.f, w));
            }
        }
        // Pass 2: writes/barriers evaluate their expressions; addresses.
        for &id in &ids {
            let kind = self.graph.event(id).kind.clone();
            match &kind {
                EventKind::Init { value, .. } => {
                    self.values[id.index()] = Some(BitVec::constant(&mut self.f, w, *value));
                }
                EventKind::Store { value, .. } | EventKind::RmwStore { value, .. } => {
                    let bv = self.val_bv(value);
                    self.values[id.index()] = Some(bv);
                }
                EventKind::Barrier { id: bid, .. } => {
                    let bv = self.val_bv(bid);
                    self.values[id.index()] = Some(bv);
                }
                _ => {}
            }
            let addr = match &kind {
                EventKind::Init { index, .. } => {
                    Some(BitVec::constant(&mut self.f, w, u64::from(*index)))
                }
                k => match k.addr() {
                    Some(a) => {
                        let idx = a.index.clone();
                        Some(self.val_bv(&idx))
                    }
                    None => None,
                },
            };
            self.addr_bv[id.index()] = addr;
        }
        // Pass 3: branch guards tie child blocks to parent blocks.
        for b in 0..self.graph.blocks().len() {
            let term = self.graph.block(b as BlockId).term.clone();
            if let UTerm::Branch {
                guard,
                then_blk,
                else_blk,
            } = term
            {
                let a = self.val_bv(&guard.a);
                let bb = self.val_bv(&guard.b);
                let eq = a.eq(&mut self.f, &bb);
                let g = match guard.cmp {
                    gpumc_ir::CmpOp::Eq => eq,
                    gpumc_ir::CmpOp::Ne => !eq,
                };
                // Parents precede children in the block arena, so the
                // parent's literal is final here; children take the gate
                // literal directly (no fresh variable).
                let parent = self.exec_block[b];
                let taken = self.f.and2(parent, g);
                let not_taken = self.f.and2(parent, !g);
                self.exec_block[then_blk as usize] = taken;
                self.exec_block[else_blk as usize] = not_taken;
            }
        }
    }

    fn encode_exec_events(&mut self) {
        let ids: Vec<EventId> = self.graph.events().iter().map(|e| e.id).collect();
        for &id in &ids {
            let block_lit = self.exec_block[self.graph.event(id).block as usize];
            let kind = self.graph.event(id).kind.clone();
            let lit = match &kind {
                EventKind::RmwStore {
                    read,
                    cas_expected: Some(exp),
                    ..
                } => {
                    let read_val = self.values[read.index()].clone().expect("read value");
                    let exp_bv = self.val_bv(exp);
                    let success = read_val.eq(&mut self.f, &exp_bv);
                    self.f.and2(block_lit, success)
                }
                _ => block_lit,
            };
            self.exec_event.push(lit);
            debug_assert_eq!(self.exec_event.len() - 1, id.index());
        }
    }

    fn val_bv(&mut self, v: &Val) -> BitVec {
        let w = self.opts.bv_width;
        match v {
            Val::Const(c) => BitVec::constant(&mut self.f, w, *c),
            Val::Read(e) => self.values[e.index()].clone().expect("read value exists"),
            Val::Bin(op, a, b) => {
                let ba = self.val_bv(a);
                let bb = self.val_bv(b);
                match op {
                    gpumc_ir::AluOp::Mov => ba,
                    gpumc_ir::AluOp::Add => ba.add(&mut self.f, &bb),
                    gpumc_ir::AluOp::Sub => ba.sub(&mut self.f, &bb),
                    gpumc_ir::AluOp::And => ba.bitand(&mut self.f, &bb),
                    gpumc_ir::AluOp::Or => ba.bitor(&mut self.f, &bb),
                    gpumc_ir::AluOp::Xor => ba.bitxor(&mut self.f, &bb),
                }
            }
        }
    }

    /// Literal for "events a and b access the same physical address".
    fn addr_eq(&mut self, a: EventId, b: EventId) -> Lit {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&l) = self.addr_eq_cache.get(&key) {
            return l;
        }
        let g = self.graph;
        let lit = if !g.may_alias(a, b) {
            self.f.lit_false()
        } else if g.must_alias(a, b) {
            self.f.lit_true()
        } else {
            // Same physical root is implied by may_alias; compare indices.
            let ba = self.addr_bv[a.index()].clone().expect("memory event");
            let bb = self.addr_bv[b.index()].clone().expect("memory event");
            ba.eq(&mut self.f, &bb)
        };
        self.addr_eq_cache.insert(key, lit);
        lit
    }

    fn pair_exec(&mut self, a: EventId, b: EventId) -> Lit {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&l) = self.pair_exec_cache.get(&key) {
            return l;
        }
        let lit = self
            .f
            .and2(self.exec_event[a.index()], self.exec_event[b.index()]);
        self.pair_exec_cache.insert(key, lit);
        lit
    }

    fn encode_rf(&mut self) {
        let upper = self
            .analysis
            .base_upper("rf")
            .cloned()
            .unwrap_or_else(|| Relation::empty(self.graph.n_events()));
        let mut per_read: HashMap<u32, Vec<EventId>> = HashMap::new();
        for (w, r) in upper.iter() {
            per_read.entry(r.0).or_default().push(w);
        }
        let mut reads: Vec<(u32, Vec<EventId>)> = per_read.into_iter().collect();
        reads.sort_by_key(|(r, _)| *r);
        for (r_idx, writers) in reads {
            let r = EventId(r_idx);
            let mut lits = Vec::new();
            for w in writers {
                let v = self.f.new_lit();
                self.rf.pairs.insert((w.0, r.0), v);
                // rf(w,r) → exec ∧ same address ∧ same value (Table 4).
                let ew = self.exec_event[w.index()];
                let er = self.exec_event[r.index()];
                self.f.assert_implies(v, ew);
                self.f.assert_implies(v, er);
                let ae = self.addr_eq(w, r);
                self.f.assert_implies(v, ae);
                let vw = self.values[w.index()].clone().expect("write value");
                let vr = self.values[r.index()].clone().expect("read value");
                let veq = vw.eq(&mut self.f, &vr);
                self.f.assert_implies(v, veq);
                lits.push(v);
            }
            // Some source when executed; at most one source.
            let er = self.exec_event[r.index()];
            let mut clause = vec![!er];
            clause.extend(&lits);
            self.f.add_clause(clause);
            self.f.assert_at_most_one(&lits);
        }
    }

    fn encode_co(&mut self) {
        let n = self.graph.n_events();
        let upper = self
            .analysis
            .base_upper("co")
            .cloned()
            .unwrap_or_else(|| Relation::empty(n));
        for (a, b) in upper.iter() {
            let v = self.f.new_lit();
            self.co.pairs.insert((a.0, b.0), v);
        }
        let iw = self.analysis.set("IW").cloned().expect("IW set");
        let pairs: Vec<(EventId, EventId)> = upper.iter().collect();
        for &(a, b) in &pairs {
            let v = self.co.get(a, b).expect("just created");
            let ea = self.exec_event[a.index()];
            let eb = self.exec_event[b.index()];
            self.f.assert_implies(v, ea);
            self.f.assert_implies(v, eb);
            let ae = self.addr_eq(a, b);
            self.f.assert_implies(v, ae);
            // Antisymmetry.
            if let Some(v2) = self.co.get(b, a) {
                self.f.add_clause([!v, !v2]);
            }
            // Init writes come first (well-definedness (iv), §2.2).
            if iw.contains(a) {
                let both = self.pair_exec(a, b);
                let pre = self.f.and2(both, ae);
                self.f.assert_implies(pre, v);
            }
            // Totality per location for Vulkan; PTX's co stays partial
            // (§4.1, Figure 6).
            if self.graph.arch == Arch::Vulkan && a.0 < b.0 && !iw.contains(a) && !iw.contains(b) {
                if let Some(v2) = self.co.get(b, a) {
                    let both = self.pair_exec(a, b);
                    let pre = self.f.and2(both, ae);
                    self.f.add_clause([!pre, v, v2]);
                }
            }
        }
        // Transitivity over may-triples.
        for &(a, b) in &pairs {
            for &(b2, c) in &pairs {
                if b != b2 || a == c {
                    continue;
                }
                let (Some(vab), Some(vbc), Some(vac)) =
                    (self.co.get(a, b), self.co.get(b, c), self.co.get(a, c))
                else {
                    continue;
                };
                self.f.add_clause([!vab, !vbc, vac]);
            }
        }
    }

    fn encode_sync_fence(&mut self) {
        if !self
            .model
            .referenced_base_rels()
            .iter()
            .any(|r| r == "sync_fence")
        {
            return;
        }
        let upper = self
            .analysis
            .base_upper("sync_fence")
            .cloned()
            .unwrap_or_else(|| Relation::empty(self.graph.n_events()));
        for (a, b) in upper.iter() {
            let v = self.f.new_lit();
            self.sync_fence.pairs.insert((a.0, b.0), v);
        }
        let pairs: Vec<(EventId, EventId)> = upper.iter().collect();
        for &(a, b) in &pairs {
            let v = self.sync_fence.get(a, b).expect("created");
            let both = self.pair_exec(a, b);
            self.f.assert_implies(v, both);
            if a.0 < b.0 {
                if let Some(v2) = self.sync_fence.get(b, a) {
                    // Orientation: executed sr-related SC fences are
                    // ordered one way or the other (Table 4, clocks).
                    self.f.add_clause([!both, v, v2]);
                    self.f.add_clause([!v, !v2]);
                }
            }
        }
        for &(a, b) in &pairs {
            for &(b2, c) in &pairs {
                if b != b2 || a == c {
                    continue;
                }
                let (Some(vab), Some(vbc), Some(vac)) = (
                    self.sync_fence.get(a, b),
                    self.sync_fence.get(b, c),
                    self.sync_fence.get(a, c),
                ) else {
                    continue;
                };
                self.f.add_clause([!vab, !vbc, vac]);
            }
        }
    }

    /// Literal of a base relation at a pair (false when impossible).
    fn base_lit(&mut self, name: &str, a: EventId, b: EventId) -> Lit {
        if let Some(&l) = self.base_cache.get(&(name.to_string(), a.0, b.0)) {
            return l;
        }
        let fls = self.f.lit_false();
        let in_upper = self
            .analysis
            .base_upper(name)
            .is_some_and(|u| u.contains(a, b));
        let lit = if !in_upper {
            fls
        } else {
            match name {
                "rf" => self.rf.get(a, b).unwrap_or(fls),
                "co" => self.co.get(a, b).unwrap_or(fls),
                "sync_fence" => self.sync_fence.get(a, b).unwrap_or(fls),
                "loc" | "vloc" => {
                    let both = self.pair_exec(a, b);
                    let ae = self.addr_eq(a, b);
                    self.f.and2(both, ae)
                }
                "syncbar" | "sync_barrier" => {
                    let both = self.pair_exec(a, b);
                    let ia = self.values[a.index()].clone().expect("barrier id");
                    let ib = self.values[b.index()].clone().expect("barrier id");
                    let ideq = ia.eq(&mut self.f, &ib);
                    self.f.and2(both, ideq)
                }
                // Static relations hold iff both events execute (Table 4).
                _ => self.pair_exec(a, b),
            }
        };
        self.base_cache.insert((name.to_string(), a.0, b.0), lit);
        lit
    }

    // ------------------------------------------------------------------
    // derived relations
    // ------------------------------------------------------------------

    fn encode_model(&mut self) -> Result<(), EncodeError> {
        let model = self.model.clone();
        let mut i = 0;
        let defs = model.defs();
        while i < defs.len() {
            self.watchdog(&format!("def {}", defs[i].name))?;
            match defs[i].rec_group {
                None => {
                    match &defs[i].body {
                        DefBody::Set(s) => {
                            let set = self.enc_set(s);
                            self.def_sets.push(Some(set));
                            self.def_rels.push(None);
                        }
                        DefBody::Rel(r) => {
                            let rel = self.enc_rel(r);
                            self.def_sets.push(None);
                            self.def_rels.push(Some(rel));
                        }
                    }
                    self.trace(&format!("def {}", defs[i].name));
                    i += 1;
                }
                Some(group) => {
                    // Pre-create variables for the whole group, then
                    // assert cyclic iff definitions (see crate docs on
                    // least-fixpoint soundness).
                    let start = i;
                    let mut end = i;
                    while end < defs.len() && defs[end].rec_group == Some(group) {
                        end += 1;
                    }
                    for j in start..end {
                        let upper = self
                            .analysis
                            .def_upper(j)
                            .cloned()
                            .unwrap_or_else(|| Relation::empty(self.graph.n_events()));
                        let mut rel = EncRel::default();
                        for (a, b) in upper.iter() {
                            rel.pairs.insert((a.0, b.0), self.f.new_lit());
                        }
                        self.def_rels.push(Some(rel));
                        self.def_sets.push(None);
                    }
                    // `j` walks `defs` and `def_rels` in lockstep.
                    #[allow(clippy::needless_range_loop)]
                    for j in start..end {
                        let DefBody::Rel(body) = &defs[j].body else {
                            unreachable!("recursive defs are relations");
                        };
                        let rhs = self.enc_rel(body);
                        let lhs = self.def_rels[j].clone().expect("created");
                        for (&(a, b), &v) in &lhs.pairs {
                            match rhs.pairs.get(&(a, b)).copied() {
                                Some(rl) => self.f.assert_iff(v, rl),
                                None => self.f.assert_lit(!v),
                            }
                        }
                    }
                    i = end;
                }
            }
        }
        // Axioms. Each one can expand into a large relational encoding,
        // so the watchdog is polled per axiom, not only per stage.
        for (idx, axiom) in model.axioms().iter().enumerate() {
            self.watchdog(&format!("axiom {}", axiom.label(idx)))?;
            let rel = self.enc_rel(&axiom.expr);
            self.trace(&format!("axiom {}", axiom.label(idx)));
            if axiom.flagged {
                self.flag_rels.insert(axiom.label(idx), rel);
                continue;
            }
            if axiom.negated {
                return Err(EncodeError::Unsupported(
                    "negated non-flagged axioms".into(),
                ));
            }
            match axiom.kind {
                AxiomKind::Empty => {
                    let lits: Vec<Lit> = rel.pairs.values().copied().collect();
                    for l in lits {
                        self.f.assert_lit(!l);
                    }
                }
                AxiomKind::Irreflexive => {
                    let lits: Vec<Lit> = rel
                        .pairs
                        .iter()
                        .filter(|(&(a, b), _)| a == b)
                        .map(|(_, &l)| l)
                        .collect();
                    for l in lits {
                        self.f.assert_lit(!l);
                    }
                }
                AxiomKind::Acyclic => self.assert_acyclic(&rel),
            }
        }
        Ok(())
    }

    /// Acyclicity via per-event position vectors: `r(a,b) → pos_a < pos_b`.
    fn assert_acyclic(&mut self, rel: &EncRel) {
        let n = self.graph.n_events();
        let width = usize::BITS as usize - n.leading_zeros() as usize + 1;
        if self.positions.is_empty() {
            self.positions = vec![None; n];
        }
        let entries: Vec<((u32, u32), Lit)> = rel.pairs.iter().map(|(&k, &v)| (k, v)).collect();
        for ((a, b), l) in entries {
            if a == b {
                self.f.assert_lit(!l);
                continue;
            }
            for idx in [a, b] {
                if self.positions[idx as usize].is_none() {
                    self.positions[idx as usize] = Some(BitVec::fresh(&mut self.f, width));
                }
            }
            let pa = self.positions[a as usize].clone().expect("created");
            let pb = self.positions[b as usize].clone().expect("created");
            let lt = pa.ult(&mut self.f, &pb);
            self.f.assert_implies(l, lt);
        }
    }

    fn enc_set(&mut self, e: &SetExpr) -> EncSet {
        let mut out = EncSet::default();
        match e {
            SetExpr::Base(_) | SetExpr::Ref(_) | SetExpr::Universe => {
                let members: Vec<u32> = match e {
                    SetExpr::Base(name) => self
                        .analysis
                        .set(name)
                        .map(|s| s.iter().map(|x| x.0).collect())
                        .unwrap_or_default(),
                    SetExpr::Ref(id) => match &self.def_sets[*id] {
                        Some(s) => return s.clone(),
                        None => Vec::new(),
                    },
                    SetExpr::Universe => (0..self.graph.n_events() as u32).collect(),
                    _ => unreachable!(),
                };
                for m in members {
                    out.members.insert(m, self.exec_event[m as usize]);
                }
            }
            SetExpr::Union(a, b) => {
                let (sa, sb) = (self.enc_set(a), self.enc_set(b));
                for (&m, &l) in &sa.members {
                    match sb.members.get(&m) {
                        Some(&l2) => {
                            let or = self.f.or2(l, l2);
                            out.members.insert(m, or);
                        }
                        None => {
                            out.members.insert(m, l);
                        }
                    }
                }
                for (&m, &l) in &sb.members {
                    out.members.entry(m).or_insert(l);
                }
            }
            SetExpr::Inter(a, b) => {
                let (sa, sb) = (self.enc_set(a), self.enc_set(b));
                for (&m, &l) in &sa.members {
                    if let Some(&l2) = sb.members.get(&m) {
                        let and = self.f.and2(l, l2);
                        out.members.insert(m, and);
                    }
                }
            }
            SetExpr::Diff(a, b) => {
                let (sa, sb) = (self.enc_set(a), self.enc_set(b));
                for (&m, &l) in &sa.members {
                    match sb.members.get(&m) {
                        Some(&l2) => {
                            let and = self.f.and2(l, !l2);
                            out.members.insert(m, and);
                        }
                        None => {
                            out.members.insert(m, l);
                        }
                    }
                }
            }
            SetExpr::Domain(r) => {
                let rel = self.enc_rel(r);
                let mut rows: HashMap<u32, Vec<Lit>> = HashMap::new();
                for (&(a, _), &l) in &rel.pairs {
                    rows.entry(a).or_default().push(l);
                }
                for (m, lits) in rows {
                    let or = self.f.or(&lits);
                    out.members.insert(m, or);
                }
            }
            SetExpr::Range(r) => {
                let rel = self.enc_rel(r);
                let mut cols: HashMap<u32, Vec<Lit>> = HashMap::new();
                for (&(_, b), &l) in &rel.pairs {
                    cols.entry(b).or_default().push(l);
                }
                for (m, lits) in cols {
                    let or = self.f.or(&lits);
                    out.members.insert(m, or);
                }
            }
        }
        out
    }

    fn enc_rel(&mut self, e: &RelExpr) -> EncRel {
        let n = self.graph.n_events();
        let mut out = EncRel::default();
        match e {
            RelExpr::Base(name) => {
                let upper = self
                    .analysis
                    .base_upper(name)
                    .cloned()
                    .unwrap_or_else(|| Relation::empty(n));
                for (a, b) in upper.iter() {
                    let l = self.base_lit(name, a, b);
                    out.pairs.insert((a.0, b.0), l);
                }
            }
            RelExpr::Ref(id) => {
                return self.def_rels[*id].clone().expect("relation def");
            }
            RelExpr::Id => {
                let t = self.f.lit_true();
                for i in 0..n as u32 {
                    out.pairs.insert((i, i), t);
                }
            }
            RelExpr::IdSet(s) => {
                let set = self.enc_set(s);
                for (&m, &l) in &set.members {
                    out.pairs.insert((m, m), l);
                }
            }
            RelExpr::Cross(a, b) => {
                let (sa, sb) = (self.enc_set(a), self.enc_set(b));
                for (&x, &lx) in &sa.members {
                    for (&y, &ly) in &sb.members {
                        if !self.graph.can_coexist(EventId(x), EventId(y)) {
                            continue;
                        }
                        if x == y {
                            out.pairs.insert((x, y), lx);
                            continue;
                        }
                        let l = self.f.and2(lx, ly);
                        out.pairs.insert((x, y), l);
                    }
                }
            }
            RelExpr::Union(a, b) => {
                let (ra, rb) = (self.enc_rel(a), self.enc_rel(b));
                for (&k, &l) in &ra.pairs {
                    match rb.pairs.get(&k) {
                        Some(&l2) => {
                            let or = self.f.or2(l, l2);
                            out.pairs.insert(k, or);
                        }
                        None => {
                            out.pairs.insert(k, l);
                        }
                    }
                }
                for (&k, &l) in &rb.pairs {
                    out.pairs.entry(k).or_insert(l);
                }
            }
            RelExpr::Inter(a, b) => {
                let (ra, rb) = (self.enc_rel(a), self.enc_rel(b));
                for (&k, &l) in &ra.pairs {
                    if let Some(&l2) = rb.pairs.get(&k) {
                        let and = self.f.and2(l, l2);
                        out.pairs.insert(k, and);
                    }
                }
            }
            RelExpr::Diff(a, b) => {
                let (ra, rb) = (self.enc_rel(a), self.enc_rel(b));
                for (&k, &l) in &ra.pairs {
                    match rb.pairs.get(&k) {
                        Some(&l2) => {
                            let and = self.f.and2(l, !l2);
                            out.pairs.insert(k, and);
                        }
                        None => {
                            out.pairs.insert(k, l);
                        }
                    }
                }
            }
            RelExpr::Seq(a, b) => {
                let (ra, rb) = (self.enc_rel(a), self.enc_rel(b));
                let mut by_first: HashMap<u32, Vec<(u32, Lit)>> = HashMap::new();
                for (&(m, c), &l) in &rb.pairs {
                    by_first.entry(m).or_default().push((c, l));
                }
                let mut disj: HashMap<(u32, u32), Vec<Lit>> = HashMap::new();
                for (&(x, m), &l1) in &ra.pairs {
                    if let Some(nexts) = by_first.get(&m) {
                        for &(c, l2) in nexts {
                            if !self.graph.can_coexist(EventId(x), EventId(c)) {
                                continue;
                            }
                            let and = self.f.and2(l1, l2);
                            disj.entry((x, c)).or_default().push(and);
                        }
                    }
                }
                for (k, lits) in disj {
                    let or = self.f.or(&lits);
                    out.pairs.insert(k, or);
                }
            }
            RelExpr::Inverse(a) => {
                let ra = self.enc_rel(a);
                for (&(x, y), &l) in &ra.pairs {
                    out.pairs.insert((y, x), l);
                }
            }
            RelExpr::Plus(a) => {
                return self.enc_closure(a, false);
            }
            RelExpr::Star(a) => {
                return self.enc_closure(a, true);
            }
            RelExpr::Opt(a) => {
                out = self.enc_rel(a);
                let t = self.f.lit_true();
                for i in 0..n as u32 {
                    out.pairs.insert((i, i), t);
                }
            }
        }
        out
    }

    /// Transitive closure with cyclic iff-gates. Every satisfying model
    /// assigns a *superset* of the least fixpoint (the one-step rules are
    /// Horn and force all derivable pairs), which is sound and complete
    /// for the anti-monotone axiom shapes of cat (see crate docs).
    fn enc_closure(&mut self, inner: &RelExpr, reflexive: bool) -> EncRel {
        let base = self.enc_rel(inner);
        let n = self.graph.n_events();
        let mut base_upper = Relation::empty(n);
        for &(a, b) in base.pairs.keys() {
            base_upper.insert(EventId(a), EventId(b));
        }
        let tc_upper = base_upper.transitive_closure();
        let mut vars = EncRel::default();
        for (a, b) in tc_upper.iter() {
            vars.pairs.insert((a.0, b.0), self.f.new_lit());
        }
        // var(a,b) ↔ base(a,b) ∨ ∃m. var(a,m) ∧ base(m,b)
        let mut base_by_second: HashMap<u32, Vec<(u32, Lit)>> = HashMap::new();
        for (&(m, b), &l) in &base.pairs {
            base_by_second.entry(b).or_default().push((m, l));
        }
        let keys: Vec<(u32, u32)> = vars.pairs.keys().copied().collect();
        for (a, b) in keys {
            let v = vars.pairs[&(a, b)];
            let mut supports = Vec::new();
            if let Some(&bl) = base.pairs.get(&(a, b)) {
                supports.push(bl);
            }
            if let Some(preds) = base_by_second.get(&b) {
                for &(m, bl) in preds {
                    if m == a {
                        continue; // covered by the direct base pair
                    }
                    if let Some(&vm) = vars.pairs.get(&(a, m)) {
                        let and = self.f.and2(vm, bl);
                        supports.push(and);
                    }
                }
            }
            let rhs = self.f.or(&supports);
            self.f.assert_iff(v, rhs);
        }
        if reflexive {
            // The diagonal is unconditionally true — overwriting any
            // transitive-closure variable the cycle-shaped upper bound
            // may have created for (i, i).
            let t = self.f.lit_true();
            for i in 0..n as u32 {
                vars.pairs.insert((i, i), t);
            }
        }
        vars
    }

    // ------------------------------------------------------------------
    // queries
    // ------------------------------------------------------------------

    fn encode_completion(&mut self) {
        for t in 0..self.graph.threads().len() {
            let mut ends = Vec::new();
            for (blk, term) in self.graph.thread_leaves(t) {
                if matches!(term, UTerm::End { .. }) {
                    ends.push(self.exec_block[blk as usize]);
                }
            }
            let lit = self.f.or(&ends);
            self.completed.push(lit);
        }
    }

    /// The final value of a thread register (ite-chain over End leaves).
    fn final_reg_bv(&mut self, thread: usize, reg: gpumc_ir::Reg) -> BitVec {
        if let Some(bv) = self.final_reg_cache.get(&(thread, reg.0)) {
            return bv.clone();
        }
        let w = self.opts.bv_width;
        let mut acc = BitVec::constant(&mut self.f, w, 0);
        let leaves: Vec<(BlockId, Option<Val>)> = self
            .graph
            .thread_leaves(thread)
            .into_iter()
            .filter_map(|(blk, term)| match term {
                UTerm::End { final_regs } => Some((
                    blk,
                    final_regs
                        .iter()
                        .find(|(r, _)| *r == reg)
                        .map(|(_, v)| v.clone()),
                )),
                _ => None,
            })
            .collect();
        for (blk, val) in leaves {
            let bv = match val {
                Some(v) => self.val_bv(&v),
                None => BitVec::constant(&mut self.f, w, 0),
            };
            let cond = self.exec_block[blk as usize];
            acc = bv.select(&mut self.f, cond, &acc);
        }
        self.final_reg_cache.insert((thread, reg.0), acc.clone());
        acc
    }

    /// A literal saying write `w` is co-maximal.
    fn co_maximal(&mut self, w: EventId) -> Lit {
        let succs: Vec<Lit> = self
            .co
            .pairs
            .iter()
            .filter(|(&(a, _), _)| a == w.0)
            .map(|(_, &l)| l)
            .collect();
        let any = self.f.or(&succs);
        !any
    }

    /// The final value of a memory element: an ite-chain over candidate
    /// co-maximal writes.
    fn final_mem_bv(&mut self, loc: gpumc_ir::LocId, index: u32) -> BitVec {
        let root = self.graph.physical_root(loc);
        let w = self.opts.bv_width;
        let mut acc = BitVec::constant(&mut self.f, w, 0);
        let idx_bv = BitVec::constant(&mut self.f, w, u64::from(index));
        let writes: Vec<EventId> = self
            .graph
            .events()
            .iter()
            .filter(|e| e.tags.contains(Tag::W))
            .filter(|e| {
                self.graph
                    .virtual_loc(e.id)
                    .is_some_and(|l| self.graph.physical_root(l) == root)
            })
            .map(|e| e.id)
            .collect();
        for wr in writes {
            let exec = self.exec_event[wr.index()];
            let comax = self.co_maximal(wr);
            let addr = self.addr_bv[wr.index()].clone().expect("write addr");
            let addr_ok = addr.eq(&mut self.f, &idx_bv);
            let sel = self.f.and(&[exec, comax, addr_ok]);
            let val = self.values[wr.index()].clone().expect("write value");
            acc = val.select(&mut self.f, sel, &acc);
        }
        acc
    }

    fn atom_bv(&mut self, a: &CondAtom) -> BitVec {
        let w = self.opts.bv_width;
        match a {
            CondAtom::Const(c) => BitVec::constant(&mut self.f, w, *c),
            CondAtom::Register { thread, reg } => self.final_reg_bv(*thread, *reg),
            CondAtom::Memory { loc, index } => self.final_mem_bv(*loc, *index),
        }
    }

    fn cond_lit(&mut self, c: &Condition) -> Lit {
        match c {
            Condition::True => self.f.lit_true(),
            Condition::Eq(a, b) => {
                let (ba, bb) = (self.atom_bv(a), self.atom_bv(b));
                ba.eq(&mut self.f, &bb)
            }
            Condition::Ne(a, b) => {
                let (ba, bb) = (self.atom_bv(a), self.atom_bv(b));
                !ba.eq(&mut self.f, &bb)
            }
            Condition::And(a, b) => {
                let (la, lb) = (self.cond_lit(a), self.cond_lit(b));
                self.f.and2(la, lb)
            }
            Condition::Or(a, b) => {
                let (la, lb) = (self.cond_lit(a), self.cond_lit(b));
                self.f.or2(la, lb)
            }
            Condition::Not(a) => {
                let l = self.cond_lit(a);
                !l
            }
        }
    }

    /// Searches for a consistent, complete behaviour satisfying the
    /// test's condition — or violating it for `forall` tests.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::WitnessMismatch`] if a SAT witness fails
    /// interpreter re-validation (an internal bug).
    pub fn find_assertion_witness(&mut self) -> Result<QueryResult<'g>, EncodeError> {
        let assertion = self
            .graph
            .assertion
            .clone()
            .unwrap_or(gpumc_ir::Assertion::Exists(Condition::True));
        let (cond, negate) = match &assertion {
            gpumc_ir::Assertion::Exists(c) | gpumc_ir::Assertion::NotExists(c) => {
                (c.clone(), false)
            }
            gpumc_ir::Assertion::Forall(c) => (c.clone(), true),
        };
        self.find_condition(&cond, negate)
    }

    /// Searches for a consistent, complete behaviour where `cond` (or its
    /// negation, with `negate`) holds.
    ///
    /// # Errors
    ///
    /// See [`Encoding::find_assertion_witness`].
    pub fn find_condition(
        &mut self,
        cond: &Condition,
        negate: bool,
    ) -> Result<QueryResult<'g>, EncodeError> {
        let act = self.new_activation_lit();
        let completed = self.completed.clone();
        for c in completed {
            self.f.add_clause([!act, c]);
        }
        let mut l = self.cond_lit(cond);
        if negate {
            l = !l;
        }
        self.f.add_clause([!act, l]);
        self.solve_and_decode(act)
    }

    /// Searches for a liveness violation (§6.4): every thread completed
    /// or stuck on a co-maximal spin read, at least one stuck.
    ///
    /// # Errors
    ///
    /// See [`Encoding::find_assertion_witness`].
    pub fn find_liveness_violation(&mut self) -> Result<QueryResult<'g>, EncodeError> {
        let act = self.new_activation_lit();
        let mut any_stuck = Vec::new();
        for t in 0..self.graph.threads().len() {
            let mut stuck_lits = Vec::new();
            let leaves: Vec<(BlockId, Option<EventId>)> = self
                .graph
                .thread_leaves(t)
                .into_iter()
                .filter_map(|(blk, term)| match term {
                    UTerm::Bound { spin } => Some((blk, spin.as_ref().map(|s| s.read))),
                    _ => None,
                })
                .collect();
            for (blk, spin) in leaves {
                let exec = self.exec_block[blk as usize];
                match spin {
                    Some(read) => {
                        // Stuck: the spin read observes a co-maximal write.
                        let sources: Vec<(EventId, Lit)> = self
                            .rf
                            .pairs
                            .iter()
                            .filter(|(&(_, r), _)| r == read.0)
                            .map(|(&(w, _), &l)| (EventId(w), l))
                            .collect();
                        let mut comax_src = Vec::new();
                        for (wr, rl) in sources {
                            let cm = self.co_maximal(wr);
                            let and = self.f.and2(rl, cm);
                            comax_src.push(and);
                        }
                        let src_ok = self.f.or(&comax_src);
                        let stuck = self.f.and2(exec, src_ok);
                        stuck_lits.push(stuck);
                    }
                    None => {
                        // Non-spin bound paths are not liveness witnesses.
                        self.f.add_clause([!act, !exec]);
                    }
                }
            }
            let stuck_t = self.f.or(&stuck_lits);
            let comp_t = self.completed[t];
            let ok = self.f.or2(stuck_t, comp_t);
            self.f.add_clause([!act, ok]);
            any_stuck.push(stuck_t);
        }
        let mut clause = vec![!act];
        clause.extend(any_stuck);
        self.f.add_clause(clause);
        self.solve_and_decode(act)
    }

    /// Whether the model defines the flagged relation `name`
    /// ([`Encoding::find_flag`] on it can succeed).
    pub fn has_flag(&self, name: &str) -> bool {
        self.flag_rels.contains_key(name)
    }

    /// Searches for a consistent, complete behaviour raising the given
    /// flag (e.g. `dr`, the Vulkan data-race detector).
    ///
    /// # Errors
    ///
    /// Fails with [`EncodeError::Unsupported`] when the model defines no
    /// such flag, or see [`Encoding::find_assertion_witness`].
    pub fn find_flag(&mut self, name: &str) -> Result<QueryResult<'g>, EncodeError> {
        let Some(rel) = self.flag_rels.get(name).cloned() else {
            return Err(EncodeError::Unsupported(format!(
                "model defines no flag `{name}`"
            )));
        };
        let act = self.new_activation_lit();
        let completed = self.completed.clone();
        for c in completed {
            self.f.add_clause([!act, c]);
        }
        let mut clause = vec![!act];
        clause.extend(rel.pairs.values().copied());
        self.f.add_clause(clause);
        self.solve_and_decode(act)
    }

    /// A fresh activation literal for a query, frozen so a later
    /// simplification pass can never eliminate it out from under the
    /// clauses it guards (the frozen-variable contract).
    fn new_activation_lit(&mut self) -> Lit {
        let act = self.f.new_lit();
        self.f.freeze_lit(act);
        act
    }

    /// Portfolio workers used when [`gpumc_sat::ParallelPolicy::Auto`]
    /// decides a query is worth parallelizing.
    const AUTO_WORKERS: u32 = 4;
    /// `Auto` races a portfolio only above this many problem clauses.
    /// The clause count is the bounds-pruned cost predictor: it is a
    /// direct function of the relation-analysis upper bounds (served
    /// from the `BoundsMemo`), which determine how many rf/co pairs the
    /// encoding materializes. Below the threshold thread setup dominates
    /// any conceivable solve-time win.
    const AUTO_CLAUSE_THRESHOLD: usize = 3_000;

    /// Resolves the configured [`gpumc_sat::ParallelPolicy`] for the next
    /// query: `None` means solve sequentially.
    fn portfolio_config(&self) -> Option<gpumc_sat::PortfolioConfig> {
        use gpumc_sat::ParallelPolicy;
        match self.opts.parallel {
            ParallelPolicy::Off => None,
            ParallelPolicy::Portfolio(n) if n >= 2 => {
                Some(gpumc_sat::PortfolioConfig::with_workers(n))
            }
            ParallelPolicy::Portfolio(_) => None,
            ParallelPolicy::Auto => (self.num_clauses() >= Self::AUTO_CLAUSE_THRESHOLD)
                .then(|| gpumc_sat::PortfolioConfig::with_workers(Self::AUTO_WORKERS)),
        }
    }

    fn solve_and_decode(&mut self, act: Lit) -> Result<QueryResult<'g>, EncodeError> {
        let result = match self.portfolio_config() {
            None => self.f.solve_with_assumptions(&[act]),
            Some(cfg) => {
                let (result, stats) = self.f.solve_parallel(&[act], &cfg);
                self.portfolio
                    .get_or_insert_with(Default::default)
                    .absorb(&stats);
                result
            }
        };
        if let Some(interrupt) = result.interrupt() {
            return Err(EncodeError::Unknown(interrupt.to_string()));
        }
        if result.is_unsat() {
            return Ok(QueryResult {
                found: false,
                witness: None,
            });
        }
        let exec = self.decode();
        // Defense in depth: the witness must satisfy the model according
        // to the explicit interpreter.
        let verdict = Interpreter::new(&self.model).check(&exec);
        if !verdict.consistent {
            return Err(EncodeError::WitnessMismatch(format!(
                "SAT witness violates axiom {:?}\n{}",
                verdict.failed_axiom,
                exec.render()
            )));
        }
        Ok(QueryResult {
            found: true,
            witness: Some(exec),
        })
    }

    /// Decodes the current SAT model into an execution.
    fn decode(&mut self) -> Execution<'g> {
        let g = self.graph;
        let n = g.n_events();
        let mut e = Execution::new(g);
        for i in 0..n {
            if self.f.value_or_false(self.exec_event[i]) {
                e.executed.insert(EventId(i as u32));
            }
        }
        for (&(w, r), &l) in &self.rf.pairs {
            if self.f.value_or_false(l) && e.executed.contains(EventId(r)) {
                e.rf[r as usize] = Some(EventId(w));
            }
        }
        for (&(a, b), &l) in &self.co.pairs {
            if self.f.value_or_false(l) {
                e.co.insert(EventId(a), EventId(b));
            }
        }
        for i in 0..n {
            let id = EventId(i as u32);
            if !e.executed.contains(id) {
                continue;
            }
            if let Some(bv) = &self.values[i] {
                e.values[i] = Some(bv.value_in(&self.f));
            }
            if let Some(bv) = &self.addr_bv[i] {
                let idx = bv.value_in(&self.f);
                if let Some(vl) = g.virtual_loc(id) {
                    e.vaddrs[i] = Some((vl, idx));
                    e.addrs[i] = Some((g.physical_root(vl), idx));
                }
            }
        }
        for t in 0..g.threads().len() {
            let mut chosen = None;
            for (blk, _) in g.thread_leaves(t) {
                if self.f.value_or_false(self.exec_block[blk as usize]) {
                    chosen = Some(blk);
                    break;
                }
            }
            let blk = chosen.expect("exactly one leaf executes");
            e.leaf.push(blk);
            e.outcomes.push(match &g.block(blk).term {
                UTerm::End { .. } => ThreadOutcome::Completed,
                UTerm::Bound { spin: Some(s) } => ThreadOutcome::Stuck { spin_read: s.read },
                UTerm::Bound { spin: None } => ThreadOutcome::Incomplete,
                UTerm::Branch { .. } => unreachable!("leaf"),
            });
        }
        // Fence order: topological sort of the chosen sync_fence edges.
        let mut fences: Vec<EventId> = e
            .executed
            .iter()
            .filter(|&x| g.event(x).tags.contains(Tag::F) && g.event(x).tags.contains(Tag::SC))
            .collect();
        let sf = &self.sync_fence;
        let f = &self.f;
        fences.sort_by(|&a, &b| {
            if sf.get(a, b).is_some_and(|l| f.value_or_false(l)) {
                std::cmp::Ordering::Less
            } else if sf.get(b, a).is_some_and(|l| f.value_or_false(l)) {
                std::cmp::Ordering::Greater
            } else {
                a.cmp(&b)
            }
        });
        e.fence_order = fences;
        e
    }
}

impl<'g> Encoding<'g> {
    /// Limits SAT conflicts per query; an exhausted budget surfaces as
    /// [`EncodeError::Unknown`] and leaves the encoding usable.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.f.solver_mut().set_conflict_budget(budget);
    }

    /// Installs (or clears) a cooperative cancellation token polled by
    /// the solver during every query on this encoding. Cancellation or
    /// deadline expiry surfaces as [`EncodeError::Unknown`].
    pub fn set_cancel_token(&mut self, token: Option<gpumc_sat::CancelToken>) {
        self.f.solver_mut().set_cancel_token(token);
    }

    /// Solver statistics.
    pub fn solver_stats(&self) -> gpumc_sat::Stats {
        self.f.solver().stats()
    }

    /// Statistics from CNF simplification, or `None` when it was
    /// disabled via [`EncodeOptions::simplify`].
    pub fn simplify_stats(&self) -> Option<gpumc_sat::SimplifyStats> {
        self.simplify_stats
    }

    /// Overrides the parallel-solve policy for subsequent queries.
    pub fn set_parallel(&mut self, policy: gpumc_sat::ParallelPolicy) {
        self.opts.parallel = policy;
    }

    /// Aggregate portfolio statistics over every parallel query run on
    /// this encoding so far; `None` when no query used the portfolio.
    pub fn portfolio_stats(&self) -> Option<gpumc_sat::PortfolioStats> {
        self.portfolio
    }

    /// Microseconds spent computing relation-analysis bounds for this
    /// encoding (zero when served from a [`crate::BoundsMemo`] hit).
    pub fn bounds_time_us(&self) -> u64 {
        self.bounds_us
    }

    /// Microseconds spent building the SAT encoding (circuit
    /// construction, excluding bounds analysis and solving).
    pub fn encode_time_us(&self) -> u64 {
        self.encode_us
    }
}

impl<'g> Encoding<'g> {
    /// Compares the SAT model's relation assignments against the
    /// interpreter's least-fixpoint values for a decoded execution.
    /// Returns human-readable discrepancies (diagnostics only).
    #[doc(hidden)]
    pub fn debug_compare(&mut self, exec: &Execution<'_>) -> Vec<String> {
        use gpumc_exec::BaseInterpretation;
        let mut out = Vec::new();
        let base = BaseInterpretation::compute(exec);
        // Compare base relations first.
        for name in self.model.referenced_base_rels() {
            let Some(upper) = self.analysis.base_upper(&name).cloned() else {
                continue;
            };
            let Some(interp) = base.rel(&name).cloned() else {
                continue;
            };
            for (a, b) in interp.iter() {
                if !upper.contains(a, b) {
                    out.push(format!(
                        "base {name}: ({},{}) outside upper bound",
                        a.0, b.0
                    ));
                    continue;
                }
                let lit = self.base_lit(&name, a, b);
                if !self.f.value_or_false(lit) {
                    out.push(format!(
                        "base {name}: ({},{}) true in interp, false in SAT",
                        a.0, b.0
                    ));
                }
            }
        }
        // Compare definitions.
        let interp = Interpreter::new(&self.model);
        for (i, def) in self.model.defs().iter().enumerate() {
            let gpumc_cat::DefBody::Rel(_) = &def.body else {
                continue;
            };
            let val = interp.eval_named_rel(&def.name, exec);
            let Some(enc) = self.def_rels[i].clone() else {
                continue;
            };
            for (a, b) in val.iter() {
                match enc.pairs.get(&(a.0, b.0)) {
                    None => out.push(format!(
                        "def {}: ({},{}) outside encoded upper bound",
                        def.name, a.0, b.0
                    )),
                    Some(&l) if !self.f.value_or_false(l) => out.push(format!(
                        "def {}: ({},{}) true in interp, false in SAT",
                        def.name, a.0, b.0
                    )),
                    _ => {}
                }
            }
        }
        out
    }
}

impl<'g> Encoding<'g> {
    /// Decodes the current SAT model (diagnostics only).
    #[doc(hidden)]
    pub fn debug_decode(&mut self) -> Execution<'g> {
        self.decode()
    }
}
