//! Instructions, memory-access attributes, and operands.

use crate::arch::Scope;
use crate::mem::LocId;

/// A thread-local register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An instruction operand: a constant or a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An immediate value.
    Const(u64),
    /// A register read.
    Reg(Reg),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Operand {
        Operand::Const(v)
    }
}

/// A memory reference: a declared name plus an optional element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// The declared memory name accessed (the *virtual address*).
    pub loc: LocId,
    /// Element index for arrays; `Const(0)` for scalars.
    pub index: Operand,
}

impl MemRef {
    /// A reference to a scalar declaration.
    pub fn scalar(loc: LocId) -> MemRef {
        MemRef {
            loc,
            index: Operand::Const(0),
        }
    }

    /// A reference to an array element.
    pub fn indexed(loc: LocId, index: impl Into<Operand>) -> MemRef {
        MemRef {
            loc,
            index: index.into(),
        }
    }
}

/// Memory ordering of an access or fence (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOrder {
    /// Plain, non-atomic access (PTX `.weak`, Vulkan non-atomic).
    Weak,
    /// Relaxed atomic.
    Relaxed,
    /// Acquire.
    Acquire,
    /// Release.
    Release,
    /// Acquire-release.
    AcqRel,
    /// Sequentially consistent (PTX `fence.sc`).
    Sc,
}

impl MemOrder {
    /// Whether the order implies atomicity.
    pub fn is_atomic(self) -> bool {
        self != MemOrder::Weak
    }

    /// Whether the order includes acquire semantics.
    pub fn includes_acquire(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::Sc)
    }

    /// Whether the order includes release semantics.
    pub fn includes_release(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel | MemOrder::Sc)
    }
}

/// A PTX memory proxy (§3.3): the cache path used by an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proxy {
    /// The conventional path to memory.
    Generic,
    /// The texture cache.
    Texture,
    /// The surface cache.
    Surface,
    /// The constant cache.
    Constant,
}

impl std::fmt::Display for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Proxy::Generic => "generic",
            Proxy::Texture => "texture",
            Proxy::Surface => "surface",
            Proxy::Constant => "constant",
        })
    }
}

/// Attributes of a memory access (load/store/RMW).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessAttrs {
    /// Memory ordering (weak = non-atomic).
    pub order: MemOrder,
    /// Synchronization scope of the access.
    pub scope: Scope,
    /// Vulkan storage-class *semantics* carried by an atomic access
    /// (`semsc0`/`semsc1`). Bit 0 = semsc0, bit 1 = semsc1.
    pub sem_sc: u8,
    /// Vulkan per-access availability flag (non-atomic writes).
    pub avail: bool,
    /// Vulkan per-access visibility flag (non-atomic reads).
    pub visible: bool,
    /// Vulkan availability *semantics* on an atomic access.
    pub sem_av: bool,
    /// Vulkan visibility *semantics* on an atomic access.
    pub sem_vis: bool,
    /// Vulkan `NonPrivate` flag: the access participates in
    /// inter-thread synchronization. Atomics are always non-private.
    pub nonpriv: bool,
}

impl AccessAttrs {
    /// A plain weak access at the narrowest PTX scope.
    pub fn weak() -> AccessAttrs {
        AccessAttrs {
            order: MemOrder::Weak,
            scope: Scope::Cta,
            sem_sc: 0,
            avail: false,
            visible: false,
            sem_av: false,
            sem_vis: false,
            nonpriv: false,
        }
    }

    /// An atomic access with the given order and scope.
    pub fn atomic(order: MemOrder, scope: Scope) -> AccessAttrs {
        AccessAttrs {
            order,
            scope,
            nonpriv: true,
            ..AccessAttrs::weak()
        }
    }

    /// Sets storage-class semantics bits (builder style).
    pub fn with_sem_sc(mut self, sem_sc: u8) -> AccessAttrs {
        self.sem_sc = sem_sc;
        self
    }

    /// Marks the access non-private (builder style).
    pub fn with_nonpriv(mut self) -> AccessAttrs {
        self.nonpriv = true;
        self
    }

    /// Sets the per-access availability flag (builder style).
    pub fn with_avail(mut self) -> AccessAttrs {
        self.avail = true;
        self.nonpriv = true;
        self
    }

    /// Sets the per-access visibility flag (builder style).
    pub fn with_visible(mut self) -> AccessAttrs {
        self.visible = true;
        self.nonpriv = true;
        self
    }

    /// Sets availability semantics (builder style).
    pub fn with_sem_av(mut self) -> AccessAttrs {
        self.sem_av = true;
        self
    }

    /// Sets visibility semantics (builder style).
    pub fn with_sem_vis(mut self) -> AccessAttrs {
        self.sem_vis = true;
        self
    }
}

/// Attributes of a memory fence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenceAttrs {
    /// Ordering strength of the fence.
    pub order: MemOrder,
    /// Synchronization scope.
    pub scope: Scope,
    /// PTX proxy the fence orders; `proxy_fence` distinguishes the
    /// special proxy fences.
    pub proxy: Proxy,
    /// Which PTX proxy fence this is, if any.
    pub proxy_fence: Option<ProxyFence>,
    /// Vulkan storage-class semantics bits.
    pub sem_sc: u8,
    /// Vulkan availability semantics.
    pub sem_av: bool,
    /// Vulkan visibility semantics.
    pub sem_vis: bool,
    /// Vulkan availability-to-device operation.
    pub av_device: bool,
    /// Vulkan visibility-to-device operation.
    pub vis_device: bool,
}

impl FenceAttrs {
    /// A fence with the given order and scope (generic proxy).
    pub fn new(order: MemOrder, scope: Scope) -> FenceAttrs {
        FenceAttrs {
            order,
            scope,
            proxy: Proxy::Generic,
            proxy_fence: None,
            sem_sc: 0,
            sem_av: false,
            sem_vis: false,
            av_device: false,
            vis_device: false,
        }
    }

    /// A PTX proxy fence.
    pub fn proxy_fence(kind: ProxyFence, scope: Scope) -> FenceAttrs {
        FenceAttrs {
            proxy_fence: Some(kind),
            ..FenceAttrs::new(MemOrder::Weak, scope)
        }
    }

    /// Sets storage-class semantics (builder style).
    pub fn with_sem_sc(mut self, sem_sc: u8) -> FenceAttrs {
        self.sem_sc = sem_sc;
        self
    }

    /// Sets availability semantics (builder style).
    pub fn with_sem_av(mut self) -> FenceAttrs {
        self.sem_av = true;
        self
    }

    /// Sets visibility semantics (builder style).
    pub fn with_sem_vis(mut self) -> FenceAttrs {
        self.sem_vis = true;
        self
    }
}

/// The PTX proxy fences (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProxyFence {
    /// Reestablishes ordering of same-location accesses across proxies.
    Alias,
    /// Synchronizes the texture cache with the generic proxy.
    Texture,
    /// Synchronizes the surface cache with the generic proxy.
    Surface,
    /// Synchronizes the constant cache with the generic proxy.
    Constant,
}

/// Attributes of a control barrier (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierAttrs {
    /// Barrier identifier: synchronization is only effective between
    /// barriers with the same id. May be a register (PTX allows dynamic
    /// barrier ids, see the paper's Figure 7).
    pub id: Operand,
    /// Scope of the barrier (a workgroup/CTA in both models).
    pub scope: Scope,
    /// Optional memory semantics (Vulkan control barriers can carry
    /// acquire/release memory ordering).
    pub fence: Option<FenceAttrs>,
}

/// A read-modify-write operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `atom.add` — fetch-and-add.
    Add,
    /// `atom.exch` — exchange.
    Exchange,
    /// `atom.cas expected` — compare-and-swap: the write happens only if
    /// the loaded value equals `expected`.
    Cas {
        /// Value compared against the current memory contents.
        expected: Operand,
    },
}

/// A register-level ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Copy.
    Mov,
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Branch if equal (`beq`).
    Eq,
    /// Branch if not equal (`bne`).
    Ne,
}

/// A label identifier (interned by the front-end).
pub type LabelId = u32;

/// A single IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// `ld dst, [addr]`
    Load {
        /// Destination register.
        dst: Reg,
        /// Address.
        addr: MemRef,
        /// Access attributes.
        attrs: AccessAttrs,
    },
    /// `st [addr], src`
    Store {
        /// Address.
        addr: MemRef,
        /// Stored value.
        src: Operand,
        /// Access attributes.
        attrs: AccessAttrs,
    },
    /// `atom.op dst, [addr], operand` — an atomic read-modify-write,
    /// modeled as a read/write event pair related by `rmw`.
    Rmw {
        /// Receives the *old* memory value.
        dst: Reg,
        /// Address.
        addr: MemRef,
        /// The modification applied.
        op: RmwOp,
        /// Second operand of the modification (added value, swapped-in
        /// value, or CAS replacement value).
        operand: Operand,
        /// Access attributes.
        attrs: AccessAttrs,
    },
    /// A memory fence.
    Fence {
        /// Fence attributes.
        attrs: FenceAttrs,
    },
    /// A control barrier.
    Barrier {
        /// Barrier attributes.
        attrs: BarrierAttrs,
    },
    /// A register ALU operation `dst = a op b`.
    Alu {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: AluOp,
        /// First operand.
        a: Operand,
        /// Second operand (ignored for `Mov`).
        b: Operand,
    },
    /// A jump target.
    Label(LabelId),
    /// An unconditional jump.
    Goto(LabelId),
    /// A conditional jump `bcc a, b, target`.
    Branch {
        /// Comparison.
        cmp: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Jump target when the comparison holds.
        target: LabelId,
    },
}

impl Instruction {
    /// Shorthand for a load.
    pub fn load(dst: Reg, addr: MemRef, attrs: AccessAttrs) -> Instruction {
        Instruction::Load { dst, addr, attrs }
    }

    /// Shorthand for a store.
    pub fn store(addr: MemRef, src: Operand, attrs: AccessAttrs) -> Instruction {
        Instruction::Store { addr, src, attrs }
    }

    /// Shorthand for a fence.
    pub fn fence(attrs: FenceAttrs) -> Instruction {
        Instruction::Fence { attrs }
    }

    /// Whether the instruction can produce a memory side effect (used by
    /// spinloop detection: a loop is a *spinloop* when its body has none).
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Instruction::Store { .. }
                | Instruction::Rmw { .. }
                | Instruction::Fence { .. }
                | Instruction::Barrier { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_order_predicates() {
        assert!(!MemOrder::Weak.is_atomic());
        assert!(MemOrder::Relaxed.is_atomic());
        assert!(MemOrder::Acquire.includes_acquire());
        assert!(!MemOrder::Acquire.includes_release());
        assert!(MemOrder::AcqRel.includes_acquire());
        assert!(MemOrder::AcqRel.includes_release());
        assert!(MemOrder::Sc.includes_acquire() && MemOrder::Sc.includes_release());
    }

    #[test]
    fn access_attr_builders() {
        let a = AccessAttrs::atomic(MemOrder::Release, Scope::Dv)
            .with_sem_sc(0b01)
            .with_sem_av();
        assert!(a.nonpriv);
        assert!(a.sem_av);
        assert_eq!(a.sem_sc, 1);
        let w = AccessAttrs::weak().with_avail();
        assert!(w.avail && w.nonpriv);
    }

    #[test]
    fn side_effects() {
        let st = Instruction::store(
            MemRef::scalar(LocId(0)),
            Operand::Const(1),
            AccessAttrs::weak(),
        );
        assert!(st.has_side_effect());
        let ld = Instruction::load(Reg(0), MemRef::scalar(LocId(0)), AccessAttrs::weak());
        assert!(!ld.has_side_effect());
        assert!(!Instruction::Goto(0).has_side_effect());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)), Operand::Reg(Reg(3)));
        assert_eq!(Operand::from(9u64), Operand::Const(9));
    }
}
