//! Bounded loop unrolling with symbolic register execution.
//!
//! Each thread is expanded into a *tree* of guarded basic blocks: a
//! conditional branch whose outcome is not statically known splits the
//! block into two children. Because paths never re-join, register
//! data-flow needs no phi nodes — every block sees a unique register
//! valuation, and loads are resolved to [`Val::Read`] of the concrete
//! event id generated on that path.
//!
//! Back-edges consume *fuel*: each backward jump instruction may be taken
//! at most `bound - 1` times on one path. When the fuel runs out the path
//! terminates with [`UTerm::Bound`]; if the exhausted loop was a
//! *spinloop* (its body contains no store, RMW, or control barrier — the
//! side-effect-free loops of §6.4) the terminator records the loop's
//! final load so the liveness checker can test co-maximal stuckness.

use std::collections::HashMap;

use crate::event::{AddrVal, Event, EventId, EventKind, Guard, Tag, TagSet, Val};
use crate::instr::{
    AccessAttrs, FenceAttrs, Instruction, MemOrder, MemRef, Operand, Proxy, ProxyFence, Reg,
};
use crate::mem::LocId;
use crate::program::{IrError, Program};
use crate::Arch;
use crate::Scope;

/// Identifier of a guarded basic block. Block 0 is the always-executed
/// block containing the init events.
pub type BlockId = u32;

/// Liveness information for an exhausted spinloop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpinInfo {
    /// The load of the final unrolled iteration that feeds the loop
    /// condition. Liveness asks whether it reads a co-maximal write.
    pub read: EventId,
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UTerm {
    /// The thread finished; `final_regs` snapshots its registers.
    End {
        /// Register valuation at thread exit (sorted by register).
        final_regs: Vec<(Reg, Val)>,
    },
    /// A data-dependent conditional branch.
    Branch {
        /// Branch condition.
        guard: Guard,
        /// Block taken when the guard holds.
        then_blk: BlockId,
        /// Block taken otherwise.
        else_blk: BlockId,
    },
    /// The unrolling bound was reached; the path is incomplete. When
    /// `spin` is set the exhausted loop was side-effect-free and the path
    /// represents a potentially *stuck* thread.
    Bound {
        /// Spinloop instrumentation, when applicable.
        spin: Option<SpinInfo>,
    },
}

/// A guarded basic block of the unrolled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UBlock {
    /// Owning thread (`None` only for the init block).
    pub thread: Option<usize>,
    /// Parent block, with the branch polarity that leads here: the block
    /// executes iff the parent executes and its branch guard evaluates to
    /// the recorded boolean.
    pub parent: Option<(BlockId, bool)>,
    /// Events generated in this block, in program order.
    pub events: Vec<Event>,
    /// Terminator.
    pub term: UTerm,
}

/// An unrolled thread: the root of its block tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrolledThread {
    /// Root block (always executed when the thread runs).
    pub root: BlockId,
}

/// A fully unrolled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrolledProgram {
    /// The source program (memory declarations, assertion, metadata).
    pub program: Program,
    /// Global block arena; index 0 is the init block.
    pub blocks: Vec<UBlock>,
    /// Per-thread roots, indexed like `program.threads`.
    pub threads: Vec<UnrolledThread>,
    /// Number of init events (event ids `0..n_init`).
    pub n_init: u32,
}

/// Upper bound on blocks produced by unrolling, guarding against path
/// explosion in adversarial inputs.
const MAX_BLOCKS: usize = 200_000;

/// Unrolls a program with the given loop bound.
///
/// `bound` is the maximal number of times any loop body may execute on a
/// path; it must be at least 1.
///
/// # Errors
///
/// Returns an error when the program is ill-formed ([`Program::validate`])
/// or unrolling exceeds the internal block limit.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn unroll(p: &Program, bound: u32) -> Result<UnrolledProgram, IrError> {
    assert!(bound >= 1, "unrolling bound must be at least 1");
    p.validate()?;
    let mut ctx = Unroller {
        program: p,
        bound,
        blocks: Vec::new(),
        next_event: 0,
    };
    // Block 0: init events.
    let mut init_events = Vec::new();
    for (li, decl) in p.memory.iter().enumerate() {
        if decl.alias_of.is_some() {
            continue; // aliases share the root's storage
        }
        for idx in 0..decl.size {
            let id = ctx.fresh_event();
            init_events.push(Event {
                id,
                thread: None,
                kind: EventKind::Init {
                    loc: LocId(li as u32),
                    index: idx,
                    value: decl.init_value(idx),
                },
                tags: TagSet::new().with(Tag::W).with(Tag::IW),
                block: 0,
                po_index: id.index(),
                label: format!("init:{}[{idx}]", decl.name),
            });
        }
    }
    let n_init = init_events.len() as u32;
    ctx.blocks.push(UBlock {
        thread: None,
        parent: None,
        events: init_events,
        term: UTerm::End {
            final_regs: Vec::new(),
        },
    });

    let mut threads = Vec::new();
    for ti in 0..p.threads.len() {
        let root = ctx.unroll_thread(ti)?;
        threads.push(UnrolledThread { root });
    }
    Ok(UnrolledProgram {
        program: p.clone(),
        blocks: ctx.blocks,
        threads,
        n_init,
    })
}

struct Unroller<'a> {
    program: &'a Program,
    bound: u32,
    blocks: Vec<UBlock>,
    next_event: u32,
}

/// Mutable per-path state during expansion.
#[derive(Clone)]
struct PathState {
    pc: usize,
    regs: HashMap<Reg, Val>,
    /// Remaining back-edge budget per jump-instruction pc.
    fuel: HashMap<usize, u32>,
    po_index: usize,
    /// Most recent load generated on this path: (pc, event id).
    last_load: Option<(usize, EventId)>,
}

impl<'a> Unroller<'a> {
    fn fresh_event(&mut self) -> EventId {
        let id = EventId(self.next_event);
        self.next_event += 1;
        id
    }

    fn fresh_block(
        &mut self,
        thread: usize,
        parent: Option<(BlockId, bool)>,
    ) -> Result<BlockId, IrError> {
        if self.blocks.len() >= MAX_BLOCKS {
            return Err(IrError {
                message: format!(
                    "unrolling exceeded {MAX_BLOCKS} blocks; reduce the bound or simplify loops"
                ),
            });
        }
        let id = self.blocks.len() as BlockId;
        self.blocks.push(UBlock {
            thread: Some(thread),
            parent,
            events: Vec::new(),
            term: UTerm::End {
                final_regs: Vec::new(),
            },
        });
        Ok(id)
    }

    fn unroll_thread(&mut self, ti: usize) -> Result<BlockId, IrError> {
        let root = self.fresh_block(ti, None)?;
        let state = PathState {
            pc: 0,
            regs: HashMap::new(),
            fuel: HashMap::new(),
            po_index: 0,
            last_load: None,
        };
        self.expand(ti, root, state)?;
        Ok(root)
    }

    fn label_pc(&self, ti: usize, label: u32) -> usize {
        self.program.threads[ti]
            .instructions
            .iter()
            .position(|i| matches!(i, Instruction::Label(l) if *l == label))
            .expect("validated label")
    }

    fn operand_val(regs: &HashMap<Reg, Val>, op: Operand) -> Val {
        match op {
            Operand::Const(c) => Val::Const(c),
            Operand::Reg(r) => regs.get(&r).cloned().unwrap_or(Val::Const(0)),
        }
    }

    fn addr_val(regs: &HashMap<Reg, Val>, m: MemRef) -> AddrVal {
        AddrVal {
            loc: m.loc,
            index: Self::operand_val(regs, m.index),
        }
    }

    /// Expands instructions into `block` starting at `state.pc`.
    fn expand(&mut self, ti: usize, block: BlockId, mut state: PathState) -> Result<(), IrError> {
        let n = self.program.threads[ti].instructions.len();
        let arch = self.program.arch;
        loop {
            if state.pc >= n {
                let mut final_regs: Vec<(Reg, Val)> = state.regs.into_iter().collect();
                final_regs.sort_by_key(|(r, _)| *r);
                self.blocks[block as usize].term = UTerm::End { final_regs };
                return Ok(());
            }
            let instr = self.program.threads[ti].instructions[state.pc].clone();
            let label = format!("{}:{}", self.program.threads[ti].name, state.pc + 1);
            match instr {
                Instruction::Label(_) => state.pc += 1,
                Instruction::Alu { dst, op, a, b } => {
                    let va = Self::operand_val(&state.regs, a);
                    let vb = Self::operand_val(&state.regs, b);
                    state.regs.insert(dst, Val::bin(op, va, vb));
                    state.pc += 1;
                }
                Instruction::Load { dst, addr, attrs } => {
                    let id = self.fresh_event();
                    let av = Self::addr_val(&state.regs, addr);
                    let tags = access_tags(arch, &attrs, false, self.program, addr.loc);
                    self.push_event(
                        block,
                        Event {
                            id,
                            thread: Some(ti),
                            kind: EventKind::Load { reg: dst, addr: av },
                            tags,
                            block,
                            po_index: state.po_index,
                            label,
                        },
                    );
                    state.po_index += 1;
                    state.regs.insert(dst, Val::Read(id));
                    state.last_load = Some((state.pc, id));
                    state.pc += 1;
                }
                Instruction::Store { addr, src, attrs } => {
                    let id = self.fresh_event();
                    let av = Self::addr_val(&state.regs, addr);
                    let value = Self::operand_val(&state.regs, src);
                    let tags = access_tags(arch, &attrs, true, self.program, addr.loc);
                    self.push_event(
                        block,
                        Event {
                            id,
                            thread: Some(ti),
                            kind: EventKind::Store { addr: av, value },
                            tags,
                            block,
                            po_index: state.po_index,
                            label,
                        },
                    );
                    state.po_index += 1;
                    state.pc += 1;
                }
                Instruction::Rmw {
                    dst,
                    addr,
                    op,
                    operand,
                    attrs,
                } => {
                    let rid = self.fresh_event();
                    let wid = self.fresh_event();
                    let av = Self::addr_val(&state.regs, addr);
                    let opval = Self::operand_val(&state.regs, operand);
                    let mut rtags = access_tags(arch, &attrs, false, self.program, addr.loc);
                    rtags.insert(Tag::RMW);
                    let mut wtags = access_tags(arch, &attrs, true, self.program, addr.loc);
                    wtags.insert(Tag::RMW);
                    // Split acquire/release across the pair: the read half
                    // carries acquire, the write half release semantics.
                    let (value, cas_expected) = match op {
                        crate::instr::RmwOp::Add => (
                            Val::bin(crate::instr::AluOp::Add, Val::Read(rid), opval),
                            None,
                        ),
                        crate::instr::RmwOp::Exchange => (opval, None),
                        crate::instr::RmwOp::Cas { expected } => {
                            (opval, Some(Self::operand_val(&state.regs, expected)))
                        }
                    };
                    self.push_event(
                        block,
                        Event {
                            id: rid,
                            thread: Some(ti),
                            kind: EventKind::RmwLoad {
                                reg: dst,
                                addr: av.clone(),
                            },
                            tags: rtags,
                            block,
                            po_index: state.po_index,
                            label: label.clone(),
                        },
                    );
                    state.po_index += 1;
                    self.push_event(
                        block,
                        Event {
                            id: wid,
                            thread: Some(ti),
                            kind: EventKind::RmwStore {
                                addr: av,
                                value,
                                read: rid,
                                cas_expected,
                            },
                            tags: wtags,
                            block,
                            po_index: state.po_index,
                            label,
                        },
                    );
                    state.po_index += 1;
                    state.regs.insert(dst, Val::Read(rid));
                    state.pc += 1;
                }
                Instruction::Fence { attrs } => {
                    let id = self.fresh_event();
                    let tags = fence_tags(arch, &attrs);
                    self.push_event(
                        block,
                        Event {
                            id,
                            thread: Some(ti),
                            kind: EventKind::Fence(attrs),
                            tags,
                            block,
                            po_index: state.po_index,
                            label,
                        },
                    );
                    state.po_index += 1;
                    state.pc += 1;
                }
                Instruction::Barrier { attrs } => {
                    let id = self.fresh_event();
                    let idval = Self::operand_val(&state.regs, attrs.id);
                    let mut tags = TagSet::new().with(Tag::B);
                    tags.insert(scope_tag(attrs.scope));
                    if let Some(f) = &attrs.fence {
                        // A barrier with memory semantics acts as a fence
                        // too (the Vulkan model's `[REL & F]; po?; [CBAR]`
                        // synchronizes-with clause matches the barrier
                        // itself through the reflexive `po?`).
                        tags.insert(Tag::F);
                        if f.order.includes_acquire() {
                            tags.insert(Tag::ACQ);
                        }
                        if f.order.includes_release() {
                            tags.insert(Tag::REL);
                        }
                        for t in implied_sem_tags(f) {
                            tags.insert(t);
                        }
                        if f.scope.arch() == arch {
                            tags.insert(scope_tag(f.scope));
                        }
                    }
                    self.push_event(
                        block,
                        Event {
                            id,
                            thread: Some(ti),
                            kind: EventKind::Barrier { id: idval, attrs },
                            tags,
                            block,
                            po_index: state.po_index,
                            label,
                        },
                    );
                    state.po_index += 1;
                    state.pc += 1;
                }
                Instruction::Goto(l) => {
                    let target = self.label_pc(ti, l);
                    if target <= state.pc {
                        // Back-edge: consume fuel.
                        let fuel = state.fuel.entry(state.pc).or_insert(self.bound - 1);
                        if *fuel == 0 {
                            let spin = self.spin_info(ti, target, state.pc, &state);
                            self.blocks[block as usize].term = UTerm::Bound { spin };
                            return Ok(());
                        }
                        *fuel -= 1;
                    }
                    state.pc = target;
                }
                Instruction::Branch { cmp, a, b, target } => {
                    let va = Self::operand_val(&state.regs, a);
                    let vb = Self::operand_val(&state.regs, b);
                    let target_pc = self.label_pc(ti, target);
                    let guard = Guard {
                        cmp,
                        a: va.clone(),
                        b: vb.clone(),
                    };
                    if let (Some(ca), Some(cb)) = (va.as_const(), vb.as_const()) {
                        // Statically decided branch: no split.
                        let taken = guard.eval(ca, cb);
                        if taken {
                            if target_pc <= state.pc {
                                let fuel = state.fuel.entry(state.pc).or_insert(self.bound - 1);
                                if *fuel == 0 {
                                    let spin = self.spin_info(ti, target_pc, state.pc, &state);
                                    self.blocks[block as usize].term = UTerm::Bound { spin };
                                    return Ok(());
                                }
                                *fuel -= 1;
                            }
                            state.pc = target_pc;
                        } else {
                            state.pc += 1;
                        }
                        continue;
                    }
                    // Data-dependent branch: split into two child blocks.
                    let then_blk = self.fresh_block(ti, Some((block, true)))?;
                    let else_blk = self.fresh_block(ti, Some((block, false)))?;
                    self.blocks[block as usize].term = UTerm::Branch {
                        guard,
                        then_blk,
                        else_blk,
                    };
                    // Then side: jump to target (may be a back-edge).
                    let mut then_state = state.clone();
                    if target_pc <= state.pc {
                        let fuel = then_state.fuel.entry(state.pc).or_insert(self.bound - 1);
                        if *fuel == 0 {
                            let spin = self.spin_info(ti, target_pc, state.pc, &then_state);
                            self.blocks[then_blk as usize].term = UTerm::Bound { spin };
                            // Else side continues past the branch.
                            let mut else_state = state;
                            else_state.pc += 1;
                            return self.expand(ti, else_blk, else_state);
                        }
                        *fuel -= 1;
                    }
                    then_state.pc = target_pc;
                    self.expand(ti, then_blk, then_state)?;
                    let mut else_state = state;
                    else_state.pc += 1;
                    return self.expand(ti, else_blk, else_state);
                }
            }
        }
    }

    fn push_event(&mut self, block: BlockId, e: Event) {
        self.blocks[block as usize].events.push(e);
    }

    /// Builds spin information for an exhausted loop `[body_start, jump_pc]`.
    fn spin_info(
        &self,
        ti: usize,
        body_start: usize,
        jump_pc: usize,
        state: &PathState,
    ) -> Option<SpinInfo> {
        let body = &self.program.threads[ti].instructions[body_start..=jump_pc];
        if body.iter().any(Instruction::has_side_effect) {
            return None;
        }
        match state.last_load {
            Some((pc, id)) if pc >= body_start && pc <= jump_pc => Some(SpinInfo { read: id }),
            _ => None,
        }
    }
}

fn scope_tag(s: Scope) -> Tag {
    match s {
        Scope::Cta => Tag::CTA,
        Scope::Gpu => Tag::GPU,
        Scope::Sys => Tag::SYS,
        Scope::Sg => Tag::SG,
        Scope::Wg => Tag::WG,
        Scope::Qf => Tag::QF,
        Scope::Dv => Tag::DV,
    }
}

fn order_tags(order: MemOrder, tags: &mut TagSet) {
    if order.is_atomic() {
        tags.insert(Tag::A);
    }
    match order {
        MemOrder::Weak => {}
        MemOrder::Relaxed => {
            tags.insert(Tag::RLX);
        }
        MemOrder::Acquire => {
            tags.insert(Tag::ACQ);
        }
        MemOrder::Release => {
            tags.insert(Tag::REL);
        }
        MemOrder::AcqRel => {
            tags.insert(Tag::ACQ);
            tags.insert(Tag::REL);
        }
        MemOrder::Sc => {
            tags.insert(Tag::SC);
            tags.insert(Tag::ACQ);
            tags.insert(Tag::REL);
        }
    }
}

fn proxy_tag(p: Proxy) -> Tag {
    match p {
        Proxy::Generic => Tag::GEN,
        Proxy::Texture => Tag::TEX,
        Proxy::Surface => Tag::SUR,
        Proxy::Constant => Tag::CON,
    }
}

/// Semantics tags of a fence, including the implicit availability /
/// visibility operations of the Vulkan model: a release operation with
/// storage-class semantics performs an availability operation on those
/// storage classes, and an acquire operation a visibility operation
/// (Vulkan spec §memory-model; explicit `SEMAV`/`SEMVIS` flags add to
/// this, they are only *required* for indirect chains like Figure 9).
fn implied_sem_tags(f: &FenceAttrs) -> Vec<Tag> {
    let mut out = Vec::new();
    if f.sem_sc & 0b01 != 0 {
        out.push(Tag::SEMSC0);
    }
    if f.sem_sc & 0b10 != 0 {
        out.push(Tag::SEMSC1);
    }
    if f.sem_av || (f.sem_sc != 0 && f.order.includes_release()) {
        out.push(Tag::SEMAV);
    }
    if f.sem_vis || (f.sem_sc != 0 && f.order.includes_acquire()) {
        out.push(Tag::SEMVIS);
    }
    if f.av_device {
        out.push(Tag::AVDEVICE);
    }
    if f.vis_device {
        out.push(Tag::VISDEVICE);
    }
    out
}

/// Computes the tag set of a memory access event.
fn access_tags(
    arch: Arch,
    attrs: &AccessAttrs,
    is_write: bool,
    program: &Program,
    loc: LocId,
) -> TagSet {
    let mut tags = TagSet::new();
    tags.insert(if is_write { Tag::W } else { Tag::R });
    // For RMW halves, the caller splits acquire to the read and release to
    // the write; here an acquire-release access simply tags both.
    let effective = match (attrs.order, is_write) {
        (MemOrder::Acquire, true) => MemOrder::Relaxed,
        (MemOrder::Release, false) => MemOrder::Relaxed,
        (MemOrder::AcqRel, true) => MemOrder::Release,
        (MemOrder::AcqRel, false) => MemOrder::Acquire,
        (o, _) => o,
    };
    order_tags(effective, &mut tags);
    tags.insert(scope_tag(attrs.scope));
    let decl = &program.memory[loc.index()];
    match arch {
        Arch::Ptx => {
            tags.insert(proxy_tag(decl.proxy));
        }
        Arch::Vulkan => {
            tags.insert(if decl.storage_class == 0 {
                Tag::SC0
            } else {
                Tag::SC1
            });
            // Atomic operations carry (at least) their own storage class
            // in their memory semantics, as compiled SPIR-V atomics do;
            // release (acquire) semantics imply an availability
            // (visibility) operation on those classes (Vulkan spec).
            let mut sem_sc = attrs.sem_sc;
            if attrs.order.is_atomic() {
                sem_sc |= if decl.storage_class == 0 { 0b01 } else { 0b10 };
            }
            if sem_sc & 0b01 != 0 {
                tags.insert(Tag::SEMSC0);
            }
            if sem_sc & 0b10 != 0 {
                tags.insert(Tag::SEMSC1);
            }
            if sem_sc != 0 && attrs.order.includes_release() && is_write {
                tags.insert(Tag::SEMAV);
            }
            if sem_sc != 0 && attrs.order.includes_acquire() && !is_write {
                tags.insert(Tag::SEMVIS);
            }
            if attrs.avail {
                tags.insert(Tag::AV);
            }
            if attrs.visible {
                tags.insert(Tag::VIS);
            }
            if attrs.sem_av {
                tags.insert(Tag::SEMAV);
            }
            if attrs.sem_vis {
                tags.insert(Tag::SEMVIS);
            }
            if attrs.nonpriv || attrs.order.is_atomic() {
                tags.insert(Tag::NONPRIV);
            }
        }
    }
    tags
}

/// Computes the tag set of a fence event.
fn fence_tags(arch: Arch, attrs: &FenceAttrs) -> TagSet {
    let mut tags = TagSet::new().with(Tag::F);
    order_tags(attrs.order, &mut tags);
    // `A` marks atomic *accesses*; fences are strong via `F` already.
    tags.remove(Tag::A);
    tags.insert(scope_tag(attrs.scope));
    if arch == Arch::Ptx {
        match attrs.proxy_fence {
            Some(ProxyFence::Alias) => {
                tags.insert(Tag::ALIAS);
                tags.insert(Tag::GEN);
            }
            Some(ProxyFence::Texture) => {
                tags.insert(Tag::TEX);
                tags.insert(Tag::GEN);
            }
            Some(ProxyFence::Surface) => {
                tags.insert(Tag::SUR);
                tags.insert(Tag::GEN);
            }
            Some(ProxyFence::Constant) => {
                tags.insert(Tag::CON);
                tags.insert(Tag::GEN);
            }
            None => {
                tags.insert(proxy_tag(attrs.proxy));
            }
        }
    }
    for t in implied_sem_tags(attrs) {
        tags.insert(t);
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::CmpOp;
    use crate::mem::MemoryDecl;
    use crate::program::Thread;
    use crate::ThreadPos;

    fn simple_program() -> (Program, LocId) {
        let mut p = Program::new(Arch::Ptx);
        let x = p.declare_memory(MemoryDecl::scalar("x"));
        (p, x)
    }

    #[test]
    fn straight_line_single_block() {
        let (mut p, x) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(1),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::load(
            Reg(0),
            MemRef::scalar(x),
            AccessAttrs::weak(),
        ));
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        assert_eq!(u.n_init, 1);
        assert_eq!(u.blocks.len(), 2); // init + one thread block
        assert_eq!(u.blocks[1].events.len(), 2);
        match &u.blocks[1].term {
            UTerm::End { final_regs } => {
                assert_eq!(final_regs.len(), 1);
                assert!(matches!(final_regs[0].1, Val::Read(_)));
            }
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    #[test]
    fn goto_loop_exhausts_fuel_and_detects_spin() {
        // LC0: ld r0, x; bne r0, 1, LC0  -- spins until x == 1.
        let (mut p, x) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::Label(0));
        t.push(Instruction::load(
            Reg(0),
            MemRef::scalar(x),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::Branch {
            cmp: CmpOp::Ne,
            a: Operand::Reg(Reg(0)),
            b: Operand::Const(1),
            target: 0,
        });
        p.add_thread(t);
        let u = unroll(&p, 3).unwrap();
        // The loop body executes up to 3 times; the innermost then-branch
        // ends with a spin Bound terminator.
        let bounds: Vec<&UTerm> = u
            .blocks
            .iter()
            .map(|b| &b.term)
            .filter(|t| matches!(t, UTerm::Bound { .. }))
            .collect();
        assert_eq!(bounds.len(), 1);
        match bounds[0] {
            UTerm::Bound { spin: Some(info) } => {
                // The final iteration's load must be the last load event.
                let loads: Vec<EventId> = u
                    .blocks
                    .iter()
                    .flat_map(|b| &b.events)
                    .filter(|e| matches!(e.kind, EventKind::Load { .. }))
                    .map(|e| e.id)
                    .collect();
                assert_eq!(loads.len(), 3);
                assert_eq!(info.read, *loads.last().unwrap());
            }
            other => panic!("expected spin bound, got {other:?}"),
        }
    }

    #[test]
    fn loop_with_store_is_not_a_spinloop() {
        let (mut p, x) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::Label(0));
        t.push(Instruction::load(
            Reg(0),
            MemRef::scalar(x),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(2),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::Branch {
            cmp: CmpOp::Ne,
            a: Operand::Reg(Reg(0)),
            b: Operand::Const(1),
            target: 0,
        });
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        for b in &u.blocks {
            if let UTerm::Bound { spin } = &b.term {
                assert!(spin.is_none(), "store in body must not be a spinloop");
            }
        }
    }

    #[test]
    fn static_goto_loop_terminates_at_bound() {
        // An unconditional self-loop: fuel must stop it.
        let (mut p, _) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::Label(0));
        t.push(Instruction::Goto(0));
        p.add_thread(t);
        let u = unroll(&p, 4).unwrap();
        assert!(u
            .blocks
            .iter()
            .any(|b| matches!(b.term, UTerm::Bound { .. })));
    }

    #[test]
    fn branch_splits_blocks_with_correct_parents() {
        let (mut p, x) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::load(
            Reg(0),
            MemRef::scalar(x),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::Branch {
            cmp: CmpOp::Eq,
            a: Operand::Reg(Reg(0)),
            b: Operand::Const(0),
            target: 0,
        });
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(1),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::Label(0));
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        let branch_blocks: Vec<(BlockId, BlockId)> = u
            .blocks
            .iter()
            .filter_map(|b| match b.term {
                UTerm::Branch {
                    then_blk, else_blk, ..
                } => Some((then_blk, else_blk)),
                _ => None,
            })
            .collect();
        assert_eq!(branch_blocks.len(), 1);
        let (tb, eb) = branch_blocks[0];
        assert_eq!(u.blocks[tb as usize].parent.map(|(_, pol)| pol), Some(true));
        assert_eq!(
            u.blocks[eb as usize].parent.map(|(_, pol)| pol),
            Some(false)
        );
        // Only the else branch stores.
        assert_eq!(u.blocks[tb as usize].events.len(), 0);
        assert_eq!(u.blocks[eb as usize].events.len(), 1);
    }

    #[test]
    fn rmw_generates_read_write_pair() {
        let (mut p, x) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::Rmw {
            dst: Reg(1),
            addr: MemRef::scalar(x),
            op: crate::instr::RmwOp::Add,
            operand: Operand::Const(1),
            attrs: AccessAttrs::atomic(MemOrder::AcqRel, Scope::Gpu),
        });
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        let evs = &u.blocks[1].events;
        assert_eq!(evs.len(), 2);
        assert!(evs[0].tags.contains(Tag::R) && evs[0].tags.contains(Tag::RMW));
        assert!(evs[0].tags.contains(Tag::ACQ) && !evs[0].tags.contains(Tag::REL));
        assert!(evs[1].tags.contains(Tag::W) && evs[1].tags.contains(Tag::RMW));
        assert!(evs[1].tags.contains(Tag::REL) && !evs[1].tags.contains(Tag::ACQ));
        match &evs[1].kind {
            EventKind::RmwStore { read, value, .. } => {
                assert_eq!(*read, evs[0].id);
                assert!(matches!(value, Val::Bin(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn vulkan_storage_class_tags() {
        let mut p = Program::new(Arch::Vulkan);
        let x = p.declare_memory(MemoryDecl::scalar("x").with_storage_class(1));
        let mut t = Thread::new("P0", ThreadPos::vulkan(0, 0, 0));
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(1),
            AccessAttrs::atomic(MemOrder::Release, Scope::Dv).with_sem_sc(0b01),
        ));
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        let e = &u.blocks[1].events[0];
        assert!(e.tags.contains(Tag::SC1));
        assert!(e.tags.contains(Tag::SEMSC0));
        assert!(e.tags.contains(Tag::DV));
        assert!(e.tags.contains(Tag::NONPRIV));
    }

    #[test]
    fn alias_declarations_share_init_events() {
        let mut p = Program::new(Arch::Ptx);
        let x = p.declare_memory(MemoryDecl::scalar("x"));
        let _s = p.declare_memory(MemoryDecl::scalar("s").with_alias(x, Proxy::Surface));
        p.add_thread(Thread::new("P0", ThreadPos::ptx(0, 0)));
        let u = unroll(&p, 2).unwrap();
        assert_eq!(u.n_init, 1);
    }

    #[test]
    fn deterministic_branch_does_not_split() {
        let (mut p, x) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::Branch {
            cmp: CmpOp::Eq,
            a: Operand::Const(1),
            b: Operand::Const(1),
            target: 0,
        });
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(9),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::Label(0));
        t.push(Instruction::load(
            Reg(0),
            MemRef::scalar(x),
            AccessAttrs::weak(),
        ));
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        assert_eq!(u.blocks.len(), 2);
        // The store is skipped by the taken branch.
        assert_eq!(u.blocks[1].events.len(), 1);
    }

    #[test]
    fn fence_sc_tags() {
        let (mut p, _) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::fence(FenceAttrs::new(
            MemOrder::Sc,
            Scope::Gpu,
        )));
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        let e = &u.blocks[1].events[0];
        assert!(e.tags.contains(Tag::F));
        assert!(e.tags.contains(Tag::SC));
        assert!(e.tags.contains(Tag::GPU));
        assert!(e.tags.contains(Tag::GEN));
    }

    #[test]
    fn proxy_fence_tags() {
        let (mut p, _) = simple_program();
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::fence(FenceAttrs::proxy_fence(
            ProxyFence::Alias,
            Scope::Cta,
        )));
        p.add_thread(t);
        let u = unroll(&p, 2).unwrap();
        let e = &u.blocks[1].events[0];
        assert!(e.tags.contains(Tag::ALIAS));
        assert!(e.tags.contains(Tag::F));
    }
}
