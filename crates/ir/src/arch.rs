//! Target architectures and scope hierarchies (§3.1 of the paper).

/// The GPU programming API whose consistency model governs a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// NVIDIA PTX (scopes: CTA < GPU < SYS; proxies).
    Ptx,
    /// Khronos Vulkan (scopes: subgroup < workgroup < queue family <
    /// device; storage classes; availability/visibility).
    Vulkan,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Arch::Ptx => "ptx",
            Arch::Vulkan => "vulkan",
        })
    }
}

/// A synchronization scope — a level of the GPU memory hierarchy.
///
/// The PTX model defines three scopes (CTA, GPU, SYS); the Vulkan model
/// four (subgroup, workgroup, queue family, device). The numeric order of
/// the variants within one architecture reflects inclusion: a larger scope
/// contains the smaller ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    // PTX scopes.
    /// Compute thread array (thread block).
    Cta,
    /// All threads of one GPU device.
    Gpu,
    /// The whole heterogeneous system.
    Sys,
    // Vulkan scopes.
    /// Subgroup.
    Sg,
    /// Workgroup.
    Wg,
    /// Queue family.
    Qf,
    /// Device.
    Dv,
}

impl Scope {
    /// The architecture the scope belongs to.
    pub fn arch(self) -> Arch {
        match self {
            Scope::Cta | Scope::Gpu | Scope::Sys => Arch::Ptx,
            Scope::Sg | Scope::Wg | Scope::Qf | Scope::Dv => Arch::Vulkan,
        }
    }

    /// Scope level within its architecture, 0 = innermost.
    pub fn level(self) -> u32 {
        match self {
            Scope::Cta | Scope::Sg => 0,
            Scope::Gpu | Scope::Wg => 1,
            Scope::Sys | Scope::Qf => 2,
            Scope::Dv => 3,
        }
    }

    /// The widest scope of an architecture.
    pub fn widest(arch: Arch) -> Scope {
        match arch {
            Arch::Ptx => Scope::Sys,
            Arch::Vulkan => Scope::Dv,
        }
    }

    /// The narrowest scope of an architecture.
    pub fn narrowest(arch: Arch) -> Scope {
        match arch {
            Arch::Ptx => Scope::Cta,
            Arch::Vulkan => Scope::Sg,
        }
    }
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scope::Cta => "cta",
            Scope::Gpu => "gpu",
            Scope::Sys => "sys",
            Scope::Sg => "sg",
            Scope::Wg => "wg",
            Scope::Qf => "qf",
            Scope::Dv => "dv",
        })
    }
}

/// The position of a thread within the GPU execution hierarchy.
///
/// Coordinates are stored innermost-first:
///
/// * PTX: `[cta, gpu]` (the system level is implicit and unique);
/// * Vulkan: `[sg, wg, qf]` (the device level is implicit and unique).
///
/// Two threads share a scope instance when their coordinates agree from
/// that scope's level *outward* — e.g. two Vulkan threads are in the same
/// workgroup iff their `wg` and `qf` coordinates both match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThreadPos {
    arch: Arch,
    coords: Vec<u32>,
}

impl ThreadPos {
    /// A PTX thread position: CTA index within a GPU, GPU index.
    pub fn ptx(cta: u32, gpu: u32) -> ThreadPos {
        ThreadPos {
            arch: Arch::Ptx,
            coords: vec![cta, gpu],
        }
    }

    /// A Vulkan thread position: subgroup, workgroup, queue-family indices.
    pub fn vulkan(sg: u32, wg: u32, qf: u32) -> ThreadPos {
        ThreadPos {
            arch: Arch::Vulkan,
            coords: vec![sg, wg, qf],
        }
    }

    /// The architecture this position belongs to.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Coordinates, innermost-first.
    pub fn coords(&self) -> &[u32] {
        &self.coords
    }

    /// Whether two threads lie within the same instance of `scope`.
    ///
    /// # Panics
    ///
    /// Panics if the positions belong to different architectures or the
    /// scope belongs to another architecture.
    pub fn same_scope(&self, other: &ThreadPos, scope: Scope) -> bool {
        assert_eq!(self.arch, other.arch, "mixed-architecture comparison");
        assert_eq!(scope.arch(), self.arch, "scope from wrong architecture");
        let level = scope.level() as usize;
        if level >= self.coords.len() {
            return true; // widest scope: always shared
        }
        self.coords[level..] == other.coords[level..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_ordering_within_arch() {
        assert!(Scope::Cta.level() < Scope::Gpu.level());
        assert!(Scope::Gpu.level() < Scope::Sys.level());
        assert!(Scope::Sg.level() < Scope::Wg.level());
        assert!(Scope::Qf.level() < Scope::Dv.level());
    }

    #[test]
    fn ptx_scope_membership() {
        let a = ThreadPos::ptx(0, 0);
        let b = ThreadPos::ptx(0, 0);
        let c = ThreadPos::ptx(1, 0);
        let d = ThreadPos::ptx(0, 1);
        assert!(a.same_scope(&b, Scope::Cta));
        assert!(!a.same_scope(&c, Scope::Cta));
        assert!(a.same_scope(&c, Scope::Gpu));
        assert!(!a.same_scope(&d, Scope::Gpu));
        assert!(a.same_scope(&d, Scope::Sys));
    }

    #[test]
    fn vulkan_scope_membership() {
        let a = ThreadPos::vulkan(0, 0, 0);
        let same_wg = ThreadPos::vulkan(1, 0, 0);
        let same_qf = ThreadPos::vulkan(0, 1, 0);
        let other_qf = ThreadPos::vulkan(0, 0, 1);
        assert!(!a.same_scope(&same_wg, Scope::Sg));
        assert!(a.same_scope(&same_wg, Scope::Wg));
        assert!(!a.same_scope(&same_qf, Scope::Wg));
        assert!(a.same_scope(&same_qf, Scope::Qf));
        assert!(!a.same_scope(&other_qf, Scope::Qf));
        assert!(a.same_scope(&other_qf, Scope::Dv));
    }

    #[test]
    fn same_coordinates_in_different_outer_instances_differ() {
        // sg 0 of wg 0 vs sg 0 of wg 1: NOT the same subgroup.
        let a = ThreadPos::vulkan(0, 0, 0);
        let b = ThreadPos::vulkan(0, 1, 0);
        assert!(!a.same_scope(&b, Scope::Sg));
    }

    #[test]
    #[should_panic(expected = "wrong architecture")]
    fn cross_arch_scope_panics() {
        let a = ThreadPos::ptx(0, 0);
        let b = ThreadPos::ptx(0, 0);
        a.same_scope(&b, Scope::Wg);
    }

    #[test]
    fn widest_narrowest() {
        assert_eq!(Scope::widest(Arch::Ptx), Scope::Sys);
        assert_eq!(Scope::narrowest(Arch::Vulkan), Scope::Sg);
    }
}
