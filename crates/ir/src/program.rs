//! Programs, threads, and safety conditions.

use crate::arch::{Arch, ThreadPos};
use crate::instr::{Instruction, Reg};
use crate::mem::{LocId, MemoryDecl};

/// A thread: a name, a position in the scope hierarchy, and code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thread {
    /// Display name (e.g. `P0`).
    pub name: String,
    /// Position in the GPU hierarchy.
    pub pos: ThreadPos,
    /// Instruction sequence.
    pub instructions: Vec<Instruction>,
}

impl Thread {
    /// Creates an empty thread.
    pub fn new(name: impl Into<String>, pos: ThreadPos) -> Thread {
        Thread {
            name: name.into(),
            pos,
            instructions: Vec::new(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instruction) -> &mut Thread {
        self.instructions.push(i);
        self
    }
}

/// An atom of a safety condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondAtom {
    /// The final value of a register of a thread.
    Register {
        /// Thread index.
        thread: usize,
        /// Register.
        reg: Reg,
    },
    /// The final value of a memory element.
    Memory {
        /// Location.
        loc: LocId,
        /// Element index.
        index: u32,
    },
    /// A constant.
    Const(u64),
}

/// A boolean condition over final register and memory values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// Always true.
    True,
    /// Equality of two atoms.
    Eq(CondAtom, CondAtom),
    /// Disequality of two atoms.
    Ne(CondAtom, CondAtom),
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// `a /\ b`
    pub fn and(a: Condition, b: Condition) -> Condition {
        Condition::And(Box::new(a), Box::new(b))
    }

    /// `a \/ b`
    pub fn or(a: Condition, b: Condition) -> Condition {
        Condition::Or(Box::new(a), Box::new(b))
    }

    /// `P<t>:r == v`
    pub fn reg_eq(thread: usize, reg: Reg, v: u64) -> Condition {
        Condition::Eq(CondAtom::Register { thread, reg }, CondAtom::Const(v))
    }

    /// `P<t>:r != v`
    pub fn reg_ne(thread: usize, reg: Reg, v: u64) -> Condition {
        Condition::Ne(CondAtom::Register { thread, reg }, CondAtom::Const(v))
    }
}

/// The quantifier of a litmus test's final condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assertion {
    /// `exists cond` — the condition is reachable (a *witness* query).
    Exists(Condition),
    /// `~exists cond` — the condition is unreachable.
    NotExists(Condition),
    /// `forall cond` — the condition holds in every behaviour.
    Forall(Condition),
}

impl Assertion {
    /// The condition under the quantifier.
    pub fn condition(&self) -> &Condition {
        match self {
            Assertion::Exists(c) | Assertion::NotExists(c) | Assertion::Forall(c) => c,
        }
    }
}

/// An IR-level validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for IrError {}

/// A complete program: memory, threads, and conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Target architecture.
    pub arch: Arch,
    /// Memory declarations; [`LocId`]s index into this list.
    pub memory: Vec<MemoryDecl>,
    /// Threads.
    pub threads: Vec<Thread>,
    /// The final safety condition, if any.
    pub assertion: Option<Assertion>,
    /// A `filter` condition restricting considered behaviours (used by
    /// Vulkan data-race tests, see §7.1).
    pub filter: Option<Condition>,
    /// Pairs of thread indices marked *system-synchronizes-with*
    /// (the Vulkan `ssw` base relation).
    pub ssw_pairs: Vec<(usize, usize)>,
    /// Test name (for reporting).
    pub name: String,
}

impl Program {
    /// Creates an empty program for an architecture.
    pub fn new(arch: Arch) -> Program {
        Program {
            arch,
            memory: Vec::new(),
            threads: Vec::new(),
            assertion: None,
            filter: None,
            ssw_pairs: Vec::new(),
            name: String::new(),
        }
    }

    /// Declares a memory object, returning its id.
    pub fn declare_memory(&mut self, decl: MemoryDecl) -> LocId {
        let id = LocId(self.memory.len() as u32);
        self.memory.push(decl);
        id
    }

    /// Finds a declaration by name.
    pub fn memory_by_name(&self, name: &str) -> Option<LocId> {
        self.memory
            .iter()
            .position(|d| d.name == name)
            .map(|i| LocId(i as u32))
    }

    /// Adds a thread, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the thread's position belongs to another architecture.
    pub fn add_thread(&mut self, t: Thread) -> usize {
        assert_eq!(
            t.pos.arch(),
            self.arch,
            "thread position from wrong architecture"
        );
        self.threads.push(t);
        self.threads.len() - 1
    }

    /// The *physical* backing store of a declaration: follows alias
    /// chains to the root declaration.
    pub fn physical_root(&self, loc: LocId) -> LocId {
        let mut cur = loc;
        let mut hops = 0;
        while let Some(target) = self.memory[cur.index()].alias_of {
            cur = target;
            hops += 1;
            assert!(
                hops <= self.memory.len(),
                "alias cycle in memory declarations"
            );
        }
        cur
    }

    /// Validates basic well-formedness (labels defined, registers used
    /// after assignment is *not* checked — reading an unwritten register
    /// yields zero like litmus tools do).
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] describing the first problem.
    pub fn validate(&self) -> Result<(), IrError> {
        for (ti, t) in self.threads.iter().enumerate() {
            let labels: Vec<u32> = t
                .instructions
                .iter()
                .filter_map(|i| match i {
                    Instruction::Label(l) => Some(*l),
                    _ => None,
                })
                .collect();
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != labels.len() {
                return Err(IrError {
                    message: format!("thread {ti}: duplicate label"),
                });
            }
            for i in &t.instructions {
                let target = match i {
                    Instruction::Goto(l) => Some(*l),
                    Instruction::Branch { target, .. } => Some(*target),
                    _ => None,
                };
                if let Some(l) = target {
                    if !labels.contains(&l) {
                        return Err(IrError {
                            message: format!("thread {ti}: jump to undefined label {l}"),
                        });
                    }
                }
            }
        }
        for &(a, b) in &self.ssw_pairs {
            if a >= self.threads.len() || b >= self.threads.len() {
                return Err(IrError {
                    message: format!("ssw pair ({a},{b}) references missing thread"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AccessAttrs, CmpOp, MemRef, Operand, Proxy};

    fn mp_skeleton() -> Program {
        let mut p = Program::new(Arch::Ptx);
        let x = p.declare_memory(MemoryDecl::scalar("x"));
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(1),
            AccessAttrs::weak(),
        ));
        p.add_thread(t);
        p
    }

    #[test]
    fn declare_and_lookup_memory() {
        let mut p = Program::new(Arch::Vulkan);
        let x = p.declare_memory(MemoryDecl::scalar("x"));
        assert_eq!(p.memory_by_name("x"), Some(x));
        assert_eq!(p.memory_by_name("y"), None);
    }

    #[test]
    fn physical_root_follows_aliases() {
        let mut p = Program::new(Arch::Ptx);
        let x = p.declare_memory(MemoryDecl::scalar("x"));
        let s = p.declare_memory(MemoryDecl::scalar("s").with_alias(x, Proxy::Surface));
        let t = p.declare_memory(MemoryDecl::scalar("t").with_alias(s, Proxy::Texture));
        assert_eq!(p.physical_root(t), x);
        assert_eq!(p.physical_root(s), x);
        assert_eq!(p.physical_root(x), x);
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(mp_skeleton().validate().is_ok());
    }

    #[test]
    fn validate_rejects_undefined_label() {
        let mut p = mp_skeleton();
        p.threads[0].push(Instruction::Goto(42));
        let e = p.validate().unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn validate_rejects_duplicate_label() {
        let mut p = mp_skeleton();
        p.threads[0].push(Instruction::Label(1));
        p.threads[0].push(Instruction::Label(1));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_ssw() {
        let mut p = mp_skeleton();
        p.ssw_pairs.push((0, 5));
        assert!(p.validate().is_err());
    }

    #[test]
    fn branch_targets_checked() {
        let mut p = mp_skeleton();
        p.threads[0].push(Instruction::Label(0));
        p.threads[0].push(Instruction::Branch {
            cmp: CmpOp::Eq,
            a: Operand::Const(0),
            b: Operand::Const(0),
            target: 0,
        });
        assert!(p.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "wrong architecture")]
    fn cross_arch_thread_panics() {
        let mut p = Program::new(Arch::Ptx);
        p.add_thread(Thread::new("P0", ThreadPos::vulkan(0, 0, 0)));
    }

    #[test]
    fn condition_builders() {
        let c = Condition::and(
            Condition::reg_eq(0, Reg(1), 1),
            Condition::reg_ne(1, Reg(2), 0),
        );
        match c {
            Condition::And(a, b) => {
                assert!(matches!(*a, Condition::Eq(_, _)));
                assert!(matches!(*b, Condition::Ne(_, _)));
            }
            _ => panic!(),
        }
    }
}
