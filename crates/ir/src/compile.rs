//! Flattening unrolled programs into event graphs.

use crate::arch::{Arch, ThreadPos};
use crate::event::{Event, EventId, Guard, Val};
use crate::mem::{LocId, MemoryDecl};
use crate::program::{Assertion, Condition};
use crate::unroll::{BlockId, UTerm, UnrolledProgram};

/// Metadata of one compiled thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledThread {
    /// Display name.
    pub name: String,
    /// Position in the scope hierarchy.
    pub pos: ThreadPos,
    /// Root block of the thread's block tree.
    pub root: BlockId,
}

/// Metadata of one guarded block inside an [`EventGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Owning thread (`None` for the init block).
    pub thread: Option<usize>,
    /// Parent block and the branch polarity leading here.
    pub parent: Option<(BlockId, bool)>,
    /// Terminator.
    pub term: UTerm,
    /// Events of the block, in program order.
    pub events: Vec<EventId>,
    /// Depth in the block tree (0 for roots).
    pub depth: u32,
}

/// The compiled form of a program: a flat list of events plus the guarded
/// block structure that controls which events execute together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventGraph {
    /// Target architecture.
    pub arch: Arch,
    /// Memory declarations (indexed by [`LocId`]).
    pub memory: Vec<MemoryDecl>,
    /// Test name.
    pub name: String,
    /// Final condition.
    pub assertion: Option<Assertion>,
    /// Behaviour filter.
    pub filter: Option<Condition>,
    /// Thread pairs related by `ssw`.
    pub ssw_pairs: Vec<(usize, usize)>,
    events: Vec<Event>,
    blocks: Vec<BlockMeta>,
    threads: Vec<CompiledThread>,
    n_init: u32,
}

/// Flattens an unrolled program into an [`EventGraph`].
pub fn compile(u: &UnrolledProgram) -> EventGraph {
    let mut events: Vec<Option<Event>> = Vec::new();
    let mut blocks: Vec<BlockMeta> = Vec::with_capacity(u.blocks.len());
    for b in &u.blocks {
        let ids: Vec<EventId> = b.events.iter().map(|e| e.id).collect();
        for e in &b.events {
            let idx = e.id.index();
            if events.len() <= idx {
                events.resize(idx + 1, None);
            }
            events[idx] = Some(e.clone());
        }
        blocks.push(BlockMeta {
            thread: b.thread,
            parent: b.parent,
            term: b.term.clone(),
            events: ids,
            depth: 0,
        });
    }
    // Depths (parents always precede children in the arena).
    for i in 0..blocks.len() {
        if let Some((p, _)) = blocks[i].parent {
            blocks[i].depth = blocks[p as usize].depth + 1;
        }
    }
    let events: Vec<Event> = events
        .into_iter()
        .map(|e| e.expect("dense event ids"))
        .collect();
    let threads = u
        .program
        .threads
        .iter()
        .zip(&u.threads)
        .map(|(t, ut)| CompiledThread {
            name: t.name.clone(),
            pos: t.pos.clone(),
            root: ut.root,
        })
        .collect();
    EventGraph {
        arch: u.program.arch,
        memory: u.program.memory.clone(),
        name: u.program.name.clone(),
        assertion: u.program.assertion.clone(),
        filter: u.program.filter.clone(),
        ssw_pairs: u.program.ssw_pairs.clone(),
        events,
        blocks,
        threads,
        n_init: u.n_init,
    }
}

impl EventGraph {
    /// A structural fingerprint of the graph, stable within a process.
    ///
    /// Two graphs compiled from the same program at the same unrolling
    /// bound hash equal; any structural difference (events, blocks,
    /// threads, memory, assertion, …) perturbs the hash. Used as a cache
    /// key for per-graph derived data such as relation-analysis bounds.
    /// Not stable across compiler or library versions — never persist it.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        // DefaultHasher::new() is deterministic (unkeyed SipHash), unlike
        // RandomState-built hashers, so equal graphs agree across threads.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // EventGraph derives Eq but not Hash (some leaves don't); the Debug
        // rendering is a faithful structural serialization of every field,
        // so hashing it preserves `a == b => fp(a) == fp(b)`.
        format!("{self:?}").hash(&mut h);
        h.finish()
    }

    /// All events, indexed by [`EventId`].
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// An event by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Number of events (including init events).
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Number of init events (their ids are `0..n_init`).
    pub fn n_init(&self) -> u32 {
        self.n_init
    }

    /// All blocks.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// A block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &BlockMeta {
        &self.blocks[id as usize]
    }

    /// Compiled threads.
    pub fn threads(&self) -> &[CompiledThread] {
        &self.threads
    }

    /// Whether `anc` is `blk` or an ancestor of `blk` in the block tree.
    pub fn is_ancestor(&self, anc: BlockId, blk: BlockId) -> bool {
        let mut cur = blk;
        loop {
            if cur == anc {
                return true;
            }
            match self.blocks[cur as usize].parent {
                Some((p, _)) => cur = p,
                None => return false,
            }
        }
    }

    /// Whether two blocks are mutually exclusive (no execution runs both).
    ///
    /// Blocks of different threads, or the init block paired with
    /// anything, are never mutually exclusive; blocks of the same thread
    /// are exclusive unless one is an ancestor of the other.
    pub fn mutually_exclusive(&self, a: BlockId, b: BlockId) -> bool {
        let (ba, bb) = (&self.blocks[a as usize], &self.blocks[b as usize]);
        match (ba.thread, bb.thread) {
            (Some(ta), Some(tb)) if ta == tb => !self.is_ancestor(a, b) && !self.is_ancestor(b, a),
            _ => false,
        }
    }

    /// Whether two events can execute in the same behaviour.
    pub fn can_coexist(&self, a: EventId, b: EventId) -> bool {
        !self.mutually_exclusive(self.event(a).block, self.event(b).block)
    }

    /// The chain of `(guard, polarity)` conditions controlling a block,
    /// from root to the block itself.
    pub fn guard_chain(&self, blk: BlockId) -> Vec<(Guard, bool)> {
        let mut chain = Vec::new();
        let mut cur = blk;
        while let Some((p, pol)) = self.blocks[cur as usize].parent {
            if let UTerm::Branch { guard, .. } = &self.blocks[p as usize].term {
                chain.push((guard.clone(), pol));
            }
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Event ids of a thread, in increasing program order.
    pub fn thread_events(&self, thread: usize) -> Vec<EventId> {
        let mut out: Vec<EventId> = self
            .events
            .iter()
            .filter(|e| e.thread == Some(thread))
            .map(|e| e.id)
            .collect();
        out.sort_by_key(|e| self.event(*e).po_index);
        out
    }

    /// Leaf blocks of a thread together with their terminators.
    pub fn thread_leaves(&self, thread: usize) -> Vec<(BlockId, &UTerm)> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.thread == Some(thread))
            .filter(|(_, b)| !matches!(b.term, UTerm::Branch { .. }))
            .map(|(i, b)| (i as BlockId, &b.term))
            .collect()
    }

    /// The *physical* root location of a declared name.
    pub fn physical_root(&self, loc: LocId) -> LocId {
        let mut cur = loc;
        while let Some(t) = self.memory[cur.index()].alias_of {
            cur = t;
        }
        cur
    }

    /// Static address of an event, when its index is a constant:
    /// `(virtual name, element)`.
    pub fn static_addr(&self, e: EventId) -> Option<(LocId, u64)> {
        match &self.event(e).kind {
            crate::event::EventKind::Init { loc, index, .. } => Some((*loc, u64::from(*index))),
            k => k
                .addr()
                .and_then(|a| a.index.as_const().map(|i| (a.loc, i))),
        }
    }

    /// The declared (virtual) location an event accesses, if it is a
    /// memory access.
    pub fn virtual_loc(&self, e: EventId) -> Option<LocId> {
        match &self.event(e).kind {
            crate::event::EventKind::Init { loc, .. } => Some(*loc),
            k => k.addr().map(|a| a.loc),
        }
    }

    /// May the two events access the same physical location?
    pub fn may_alias(&self, a: EventId, b: EventId) -> bool {
        let (Some(la), Some(lb)) = (self.virtual_loc(a), self.virtual_loc(b)) else {
            return false;
        };
        if self.physical_root(la) != self.physical_root(lb) {
            return false;
        }
        match (self.static_addr(a), self.static_addr(b)) {
            (Some((_, ia)), Some((_, ib))) => ia == ib,
            _ => true, // a dynamic index may equal anything in the array
        }
    }

    /// Must the two events access the same physical location?
    pub fn must_alias(&self, a: EventId, b: EventId) -> bool {
        let (Some(la), Some(lb)) = (self.virtual_loc(a), self.virtual_loc(b)) else {
            return false;
        };
        if self.physical_root(la) != self.physical_root(lb) {
            return false;
        }
        matches!(
            (self.static_addr(a), self.static_addr(b)),
            (Some((_, ia)), Some((_, ib))) if ia == ib
        )
    }

    /// Must the two events use the same *virtual* address (same declared
    /// name and same element)? This is the paper's `vloc` (Table 1).
    pub fn same_virtual(&self, a: EventId, b: EventId) -> bool {
        match (self.virtual_loc(a), self.virtual_loc(b)) {
            (Some(la), Some(lb)) if la == lb => matches!(
                (self.static_addr(a), self.static_addr(b)),
                (Some((_, ia)), Some((_, ib))) if ia == ib
            ),
            // Init events belong to every virtual address of their
            // physical storage: treat an init write as same-virtual with
            // any access to its location.
            (Some(la), Some(lb)) => {
                (self.event(a).tags.contains(crate::event::Tag::IW)
                    || self.event(b).tags.contains(crate::event::Tag::IW))
                    && self.physical_root(la) == self.physical_root(lb)
                    && self.may_alias(a, b)
            }
            _ => false,
        }
    }

    /// The symbolic value written by a write event.
    pub fn write_value(&self, e: EventId) -> Option<Val> {
        match &self.event(e).kind {
            crate::event::EventKind::Init { value, .. } => Some(Val::Const(*value)),
            crate::event::EventKind::Store { value, .. } => Some(value.clone()),
            crate::event::EventKind::RmwStore { value, .. } => Some(value.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Tag;
    use crate::instr::{AccessAttrs, CmpOp, Instruction, MemRef, Operand, Proxy, Reg};
    use crate::mem::MemoryDecl;
    use crate::program::{Program, Thread};
    use crate::unroll::unroll;

    fn branchy_graph() -> EventGraph {
        let mut p = Program::new(Arch::Ptx);
        let x = p.declare_memory(MemoryDecl::scalar("x"));
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::load(
            Reg(0),
            MemRef::scalar(x),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::Branch {
            cmp: CmpOp::Eq,
            a: Operand::Reg(Reg(0)),
            b: Operand::Const(0),
            target: 0,
        });
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(1),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::Label(0));
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(2),
            AccessAttrs::weak(),
        ));
        p.add_thread(t);
        compile(&unroll(&p, 2).unwrap())
    }

    #[test]
    fn dense_event_ids_and_init() {
        let g = branchy_graph();
        assert_eq!(g.n_init(), 1);
        for (i, e) in g.events().iter().enumerate() {
            assert_eq!(e.id.index(), i);
        }
        assert!(g.event(crate::event::EventId(0)).tags.contains(Tag::IW));
    }

    #[test]
    fn mutual_exclusion_of_branch_arms() {
        let g = branchy_graph();
        // Find the store(1) (then-skipped / else branch) and store(2)s.
        let stores: Vec<_> = g
            .events()
            .iter()
            .filter(|e| matches!(&e.kind, crate::event::EventKind::Store { .. }))
            .collect();
        assert_eq!(stores.len(), 3); // store(1) on else, store(2) on both arms
        let blocks: Vec<_> = stores.iter().map(|e| e.block).collect();
        // The two store(2) copies live in sibling blocks.
        let mut excl = 0;
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                if g.mutually_exclusive(blocks[i], blocks[j]) {
                    excl += 1;
                }
            }
        }
        // store(1)@else vs store(2)@then, and store(2)@else vs
        // store(2)@then: two exclusive pairs across the sibling arms.
        assert_eq!(excl, 2);
    }

    #[test]
    fn guard_chain_polarity() {
        let g = branchy_graph();
        let leaf_blocks: Vec<_> = (0..g.blocks().len() as u32)
            .filter(|&b| g.block(b).thread == Some(0))
            .filter(|&b| !matches!(g.block(b).term, UTerm::Branch { .. }))
            .collect();
        assert_eq!(leaf_blocks.len(), 2);
        for b in leaf_blocks {
            let chain = g.guard_chain(b);
            assert_eq!(chain.len(), 1);
        }
    }

    #[test]
    fn alias_and_virtual_addresses() {
        let mut p = Program::new(Arch::Ptx);
        let x = p.declare_memory(MemoryDecl::scalar("x"));
        let s = p.declare_memory(MemoryDecl::scalar("s").with_alias(x, Proxy::Surface));
        let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
        t.push(Instruction::store(
            MemRef::scalar(x),
            Operand::Const(1),
            AccessAttrs::weak(),
        ));
        t.push(Instruction::store(
            MemRef::scalar(s),
            Operand::Const(2),
            AccessAttrs::weak(),
        ));
        p.add_thread(t);
        let g = compile(&unroll(&p, 2).unwrap());
        let ids: Vec<_> = g.thread_events(0);
        let (e1, e2) = (ids[0], ids[1]);
        assert!(g.may_alias(e1, e2));
        assert!(g.must_alias(e1, e2));
        assert!(
            !g.same_virtual(e1, e2),
            "x and s are distinct virtual addresses"
        );
        // Init event is same-virtual with both.
        let init = crate::event::EventId(0);
        assert!(g.same_virtual(init, e1));
        assert!(g.same_virtual(init, e2));
    }

    #[test]
    fn thread_events_in_po_order() {
        let g = branchy_graph();
        let evs = g.thread_events(0);
        let idxs: Vec<usize> = evs.iter().map(|&e| g.event(e).po_index).collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        assert_eq!(idxs, sorted);
    }

    #[test]
    fn leaves_have_end_terminators() {
        let g = branchy_graph();
        let leaves = g.thread_leaves(0);
        assert_eq!(leaves.len(), 2);
        assert!(leaves.iter().all(|(_, t)| matches!(t, UTerm::End { .. })));
    }

    #[test]
    fn write_values() {
        let g = branchy_graph();
        let init = crate::event::EventId(0);
        assert_eq!(g.write_value(init), Some(Val::Const(0)));
        let store = g
            .events()
            .iter()
            .find(|e| matches!(&e.kind, crate::event::EventKind::Store { .. }))
            .unwrap();
        assert!(g.write_value(store.id).is_some());
        let load = g
            .events()
            .iter()
            .find(|e| matches!(&e.kind, crate::event::EventKind::Load { .. }))
            .unwrap();
        assert_eq!(g.write_value(load.id), None);
    }
}
