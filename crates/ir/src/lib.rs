//! Unified intermediate representation for GPU litmus tests and kernels.
//!
//! Both front-ends (the PTX/Vulkan litmus dialects and the SPIR-V subset)
//! lower into this IR. A [`Program`] is a set of threads placed in a GPU
//! scope hierarchy ([`ThreadPos`]), each a list of [`Instruction`]s over
//! declared memory ([`MemoryDecl`]), with an optional safety assertion.
//!
//! The back half of the crate turns programs into *event graphs*:
//!
//! * [`unroll`] performs bounded loop unrolling, producing a per-thread
//!   tree of guarded basic blocks (so register data-flow needs no phi
//!   nodes) and detecting *spinloops* (side-effect-free loops), which the
//!   liveness checker instruments per §6.4 of the paper;
//! * [`compile`] flattens the unrolled trees into an [`EventGraph`]:
//!   memory events carrying the tag sets of Table 2, symbolic values,
//!   and control-flow guards.
//!
//! # Example
//!
//! ```
//! use gpumc_ir::*;
//!
//! // A two-thread message-passing program built by hand.
//! let mut p = Program::new(Arch::Ptx);
//! let x = p.declare_memory(MemoryDecl::scalar("x"));
//! let y = p.declare_memory(MemoryDecl::scalar("y"));
//! let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
//! t0.push(Instruction::store(MemRef::scalar(x), Operand::Const(1), AccessAttrs::weak()));
//! t0.push(Instruction::store(MemRef::scalar(y), Operand::Const(1), AccessAttrs::weak()));
//! p.add_thread(t0);
//! let mut t1 = Thread::new("P1", ThreadPos::ptx(0, 0));
//! t1.push(Instruction::load(Reg(0), MemRef::scalar(y), AccessAttrs::weak()));
//! t1.push(Instruction::load(Reg(1), MemRef::scalar(x), AccessAttrs::weak()));
//! p.add_thread(t1);
//!
//! let unrolled = unroll(&p, 2).unwrap();
//! let graph = compile(&unrolled);
//! assert_eq!(graph.events().iter().filter(|e| e.tags.contains(Tag::W)).count(),
//!            2 + 2 /* init writes */);
//! ```

mod arch;
mod compile;
mod event;
mod instr;
mod mem;
mod program;
mod unroll;

pub use arch::{Arch, Scope, ThreadPos};
pub use compile::{compile, CompiledThread, EventGraph};
pub use event::{Event, EventId, EventKind, Guard, Tag, TagSet, Val};
pub use instr::{
    AccessAttrs, AluOp, BarrierAttrs, CmpOp, FenceAttrs, Instruction, LabelId, MemOrder, MemRef,
    Operand, Proxy, ProxyFence, Reg, RmwOp,
};
pub use mem::{LocId, MemoryDecl};
pub use program::{Assertion, CondAtom, Condition, IrError, Program, Thread};
pub use unroll::{unroll, BlockId, SpinInfo, UBlock, UTerm, UnrolledProgram, UnrolledThread};
