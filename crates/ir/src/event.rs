//! Events, event tags (Table 2), and symbolic values.

use crate::instr::{AluOp, BarrierAttrs, CmpOp, FenceAttrs, Reg};
use crate::mem::LocId;

/// Identifier of an event in an [`crate::EventGraph`].
///
/// Init events occupy the lowest ids, followed by thread events in
/// program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// Index into the event list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An event tag: base tags of the `.cat` language plus the GPU tags of
/// Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
#[allow(missing_docs)] // the variants mirror Table 2 one-for-one
pub enum Tag {
    // Core event classes.
    R = 0,
    W,
    F,
    /// Control barrier (`B`/`CBAR` in cat).
    B,
    /// Initial write.
    IW,
    /// Part of an RMW pair.
    RMW,
    // Atomicity / memory orders.
    A,
    ACQ,
    REL,
    SC,
    RLX,
    // Vulkan privacy.
    NONPRIV,
    // Instruction scopes.
    SG,
    WG,
    QF,
    DV,
    CTA,
    GPU,
    SYS,
    // PTX proxies.
    GEN,
    SUR,
    TEX,
    CON,
    /// PTX alias proxy fence.
    ALIAS,
    // Vulkan storage classes.
    SC0,
    SC1,
    SEMSC0,
    SEMSC1,
    // Vulkan availability / visibility.
    AV,
    VIS,
    SEMAV,
    SEMVIS,
    AVDEVICE,
    VISDEVICE,
}

impl Tag {
    /// All tags (for iteration).
    pub const ALL: [Tag; 34] = [
        Tag::R,
        Tag::W,
        Tag::F,
        Tag::B,
        Tag::IW,
        Tag::RMW,
        Tag::A,
        Tag::ACQ,
        Tag::REL,
        Tag::SC,
        Tag::RLX,
        Tag::NONPRIV,
        Tag::SG,
        Tag::WG,
        Tag::QF,
        Tag::DV,
        Tag::CTA,
        Tag::GPU,
        Tag::SYS,
        Tag::GEN,
        Tag::SUR,
        Tag::TEX,
        Tag::CON,
        Tag::ALIAS,
        Tag::SC0,
        Tag::SC1,
        Tag::SEMSC0,
        Tag::SEMSC1,
        Tag::AV,
        Tag::VIS,
        Tag::SEMAV,
        Tag::SEMVIS,
        Tag::AVDEVICE,
        Tag::VISDEVICE,
    ];

    /// Looks a tag up by its `.cat` name.
    ///
    /// `M` (any memory access) and `I`/`CBAR` aliases are resolved by the
    /// relation evaluator, not here; this handles exact tag names only.
    pub fn from_name(name: &str) -> Option<Tag> {
        Tag::ALL.iter().copied().find(|t| t.name() == name)
    }

    /// The `.cat` name of the tag.
    pub fn name(self) -> &'static str {
        match self {
            Tag::R => "R",
            Tag::W => "W",
            Tag::F => "F",
            Tag::B => "B",
            Tag::IW => "IW",
            Tag::RMW => "RMW",
            Tag::A => "A",
            Tag::ACQ => "ACQ",
            Tag::REL => "REL",
            Tag::SC => "SC",
            Tag::RLX => "RLX",
            Tag::NONPRIV => "NONPRIV",
            Tag::SG => "SG",
            Tag::WG => "WG",
            Tag::QF => "QF",
            Tag::DV => "DV",
            Tag::CTA => "CTA",
            Tag::GPU => "GPU",
            Tag::SYS => "SYS",
            Tag::GEN => "GEN",
            Tag::SUR => "SUR",
            Tag::TEX => "TEX",
            Tag::CON => "CON",
            Tag::ALIAS => "ALIAS",
            Tag::SC0 => "SC0",
            Tag::SC1 => "SC1",
            Tag::SEMSC0 => "SEMSC0",
            Tag::SEMSC1 => "SEMSC1",
            Tag::AV => "AV",
            Tag::VIS => "VIS",
            Tag::SEMAV => "SEMAV",
            Tag::SEMVIS => "SEMVIS",
            Tag::AVDEVICE => "AVDEVICE",
            Tag::VISDEVICE => "VISDEVICE",
        }
    }
}

/// A set of event tags (bit set over [`Tag`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TagSet(u64);

impl TagSet {
    /// The empty tag set.
    pub fn new() -> TagSet {
        TagSet(0)
    }

    /// Inserts a tag.
    pub fn insert(&mut self, t: Tag) -> &mut TagSet {
        self.0 |= 1 << (t as u32);
        self
    }

    /// Inserts a tag (builder style).
    pub fn with(mut self, t: Tag) -> TagSet {
        self.insert(t);
        self
    }

    /// Removes a tag.
    pub fn remove(&mut self, t: Tag) -> &mut TagSet {
        self.0 &= !(1 << (t as u32));
        self
    }

    /// Tests membership.
    pub fn contains(self, t: Tag) -> bool {
        self.0 >> (t as u32) & 1 == 1
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained tags.
    pub fn iter(self) -> impl Iterator<Item = Tag> {
        Tag::ALL.into_iter().filter(move |&t| self.contains(t))
    }
}

impl FromIterator<Tag> for TagSet {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> TagSet {
        let mut s = TagSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl std::fmt::Display for TagSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.iter().map(Tag::name).collect();
        write!(f, "{{{}}}", names.join(","))
    }
}

/// A symbolic value: a constant, the result of a read, or an ALU
/// combination thereof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// An immediate.
    Const(u64),
    /// The value loaded by a read event.
    Read(EventId),
    /// A binary ALU operation.
    Bin(AluOp, Box<Val>, Box<Val>),
}

impl Val {
    /// Builds a binary operation, constant-folding when possible.
    pub fn bin(op: AluOp, a: Val, b: Val) -> Val {
        if let (Val::Const(x), Val::Const(y)) = (&a, &b) {
            return Val::Const(Val::apply(op, *x, *y));
        }
        if op == AluOp::Mov {
            return a;
        }
        Val::Bin(op, Box::new(a), Box::new(b))
    }

    /// Applies an ALU operation to concrete values.
    pub fn apply(op: AluOp, a: u64, b: u64) -> u64 {
        match op {
            AluOp::Mov => a,
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            Val::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// All read events this value depends on (the `data`/`addr`
    /// dependency sources).
    pub fn reads(&self, out: &mut Vec<EventId>) {
        match self {
            Val::Const(_) => {}
            Val::Read(e) => out.push(*e),
            Val::Bin(_, a, b) => {
                a.reads(out);
                b.reads(out);
            }
        }
    }
}

/// A branch condition over symbolic values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Guard {
    /// Comparison operator.
    pub cmp: CmpOp,
    /// Left value.
    pub a: Val,
    /// Right value.
    pub b: Val,
}

impl Guard {
    /// Evaluates the guard over concrete values.
    pub fn eval(&self, a: u64, b: u64) -> bool {
        match self.cmp {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// A resolved memory address: a declared name plus a symbolic index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrVal {
    /// The declared (virtual) name.
    pub loc: LocId,
    /// Element index.
    pub index: Val,
}

/// What an event does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An initial write populating memory (one per physical element).
    Init {
        /// Physical location.
        loc: LocId,
        /// Element index.
        index: u32,
        /// Initial value.
        value: u64,
    },
    /// A load into a register.
    Load {
        /// Destination register (for reporting).
        reg: Reg,
        /// Address.
        addr: AddrVal,
    },
    /// A store.
    Store {
        /// Address.
        addr: AddrVal,
        /// Stored value.
        value: Val,
    },
    /// The read half of an RMW.
    RmwLoad {
        /// Destination register.
        reg: Reg,
        /// Address.
        addr: AddrVal,
    },
    /// The write half of an RMW. For CAS, the event only executes when
    /// the paired read loaded `cas_expected`.
    RmwStore {
        /// Address.
        addr: AddrVal,
        /// Stored value.
        value: Val,
        /// The paired read event.
        read: EventId,
        /// CAS expectation (None for unconditional RMWs).
        cas_expected: Option<Val>,
    },
    /// A memory fence (including PTX proxy fences and Vulkan
    /// av/vis-device operations).
    Fence(FenceAttrs),
    /// A control barrier.
    Barrier {
        /// Barrier id value.
        id: Val,
        /// Attributes.
        attrs: BarrierAttrs,
    },
}

impl EventKind {
    /// The address accessed, for memory events.
    pub fn addr(&self) -> Option<&AddrVal> {
        match self {
            EventKind::Load { addr, .. }
            | EventKind::Store { addr, .. }
            | EventKind::RmwLoad { addr, .. }
            | EventKind::RmwStore { addr, .. } => Some(addr),
            _ => None,
        }
    }
}

/// An event of the compiled event graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Identifier.
    pub id: EventId,
    /// Owning thread (`None` for init events).
    pub thread: Option<usize>,
    /// Payload.
    pub kind: EventKind,
    /// Tag set (Table 2).
    pub tags: TagSet,
    /// The guarded block the event belongs to (init events live in the
    /// always-executed block 0).
    pub block: crate::unroll::BlockId,
    /// Program-order index within the thread (increases along any path).
    pub po_index: usize,
    /// Source label, e.g. `P0:3`.
    pub label: String,
}

impl Event {
    /// Whether this is a memory access (read or write).
    pub fn is_memory(&self) -> bool {
        self.tags.contains(Tag::R) || self.tags.contains(Tag::W)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagset_insert_contains() {
        let mut s = TagSet::new();
        assert!(s.is_empty());
        s.insert(Tag::W).insert(Tag::REL);
        assert!(s.contains(Tag::W));
        assert!(s.contains(Tag::REL));
        assert!(!s.contains(Tag::R));
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn tag_names_roundtrip() {
        for t in Tag::ALL {
            assert_eq!(Tag::from_name(t.name()), Some(t), "{t:?}");
        }
        assert_eq!(Tag::from_name("nope"), None);
    }

    #[test]
    fn tagset_display() {
        let s = TagSet::new().with(Tag::W).with(Tag::ACQ);
        assert_eq!(s.to_string(), "{W,ACQ}");
    }

    #[test]
    fn val_constant_folding() {
        let v = Val::bin(AluOp::Add, Val::Const(2), Val::Const(3));
        assert_eq!(v, Val::Const(5));
        let m = Val::bin(AluOp::Mov, Val::Read(EventId(1)), Val::Const(0));
        assert_eq!(m, Val::Read(EventId(1)));
    }

    #[test]
    fn val_reads_collects_dependencies() {
        let v = Val::bin(
            AluOp::Add,
            Val::Read(EventId(1)),
            Val::bin(AluOp::Xor, Val::Read(EventId(2)), Val::Const(1)),
        );
        let mut rs = Vec::new();
        v.reads(&mut rs);
        assert_eq!(rs, vec![EventId(1), EventId(2)]);
    }

    #[test]
    fn guard_eval() {
        let g = Guard {
            cmp: CmpOp::Eq,
            a: Val::Const(0),
            b: Val::Const(0),
        };
        assert!(g.eval(1, 1));
        assert!(!g.eval(1, 2));
        let g = Guard {
            cmp: CmpOp::Ne,
            a: Val::Const(0),
            b: Val::Const(0),
        };
        assert!(g.eval(1, 2));
    }

    #[test]
    fn apply_ops() {
        assert_eq!(Val::apply(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(Val::apply(AluOp::Sub, 0, 1), u64::MAX);
        assert_eq!(Val::apply(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(Val::apply(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(Val::apply(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(Val::apply(AluOp::Mov, 7, 9), 7);
    }
}
