//! Memory declarations: physical locations, virtual aliases, storage
//! classes (§3.3 of the paper).

use crate::instr::Proxy;

/// Identifier of a declared memory name (an index into
/// [`crate::Program::memory`]).
///
/// Note that several declared names may alias the same *physical* storage:
/// a declaration with [`MemoryDecl::alias_of`] set introduces a new
/// *virtual address* backed by another declaration, as in the paper's
/// Figure 5 prelude where the surface name `s` aliases the generic
/// location `x`. The relation `loc` compares physical storage; `vloc`
/// compares declared names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u32);

impl LocId {
    /// The index into the program's declaration list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A declared memory object: a scalar or array, possibly an alias of
/// another declaration through a specific proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryDecl {
    /// Source-level name.
    pub name: String,
    /// Number of elements (1 for scalars).
    pub size: u32,
    /// Initial values (padded with zeros to `size`).
    pub init: Vec<u64>,
    /// When set, this name is a virtual alias of the given declaration:
    /// it shares physical storage but is a distinct virtual address.
    pub alias_of: Option<LocId>,
    /// The memory proxy through which this name accesses storage (PTX).
    pub proxy: Proxy,
    /// The Vulkan storage class of the declaration (0 or 1).
    pub storage_class: u8,
}

impl MemoryDecl {
    /// A zero-initialized scalar in the generic proxy, storage class 0.
    pub fn scalar(name: impl Into<String>) -> MemoryDecl {
        MemoryDecl {
            name: name.into(),
            size: 1,
            init: Vec::new(),
            alias_of: None,
            proxy: Proxy::Generic,
            storage_class: 0,
        }
    }

    /// A zero-initialized array.
    pub fn array(name: impl Into<String>, size: u32) -> MemoryDecl {
        MemoryDecl {
            size,
            ..MemoryDecl::scalar(name)
        }
    }

    /// Sets the initial value of element 0 (builder style).
    pub fn with_init(mut self, value: u64) -> MemoryDecl {
        if self.init.is_empty() {
            self.init.push(value);
        } else {
            self.init[0] = value;
        }
        self
    }

    /// Declares this name as a virtual alias of `target` via `proxy`.
    pub fn with_alias(mut self, target: LocId, proxy: Proxy) -> MemoryDecl {
        self.alias_of = Some(target);
        self.proxy = proxy;
        self
    }

    /// Sets the Vulkan storage class (builder style).
    pub fn with_storage_class(mut self, sc: u8) -> MemoryDecl {
        self.storage_class = sc;
        self
    }

    /// The initial value of element `i` (zero when unspecified).
    pub fn init_value(&self, i: u32) -> u64 {
        self.init.get(i as usize).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_defaults() {
        let d = MemoryDecl::scalar("x");
        assert_eq!(d.size, 1);
        assert_eq!(d.init_value(0), 0);
        assert_eq!(d.proxy, Proxy::Generic);
        assert_eq!(d.storage_class, 0);
        assert!(d.alias_of.is_none());
    }

    #[test]
    fn builders() {
        let d = MemoryDecl::scalar("s")
            .with_init(7)
            .with_alias(LocId(0), Proxy::Surface)
            .with_storage_class(1);
        assert_eq!(d.init_value(0), 7);
        assert_eq!(d.alias_of, Some(LocId(0)));
        assert_eq!(d.proxy, Proxy::Surface);
        assert_eq!(d.storage_class, 1);
    }

    #[test]
    fn array_init_padding() {
        let mut d = MemoryDecl::array("a", 4);
        d.init = vec![1, 2];
        assert_eq!(d.init_value(0), 1);
        assert_eq!(d.init_value(1), 2);
        assert_eq!(d.init_value(3), 0);
    }
}
