//! The synthesized GPUVerify-suite stand-in for Table 6.
//!
//! The paper runs 486 OpenCL kernels from the GPUVerify test suite
//! through CLSPV: 225 fail to compile, 84 become trivially race-free
//! after dead-code elimination, 111 use features Dartagnan does not
//! support (floating point and similar), and 66 are verified. We cannot
//! redistribute that suite, so this module synthesizes a corpus with the
//! same pipeline buckets (DESIGN.md substitution #3); the 66 verifiable
//! kernels are real kernels spanning the suite's synchronization idioms.

use gpumc_ir::{MemOrder, Scope};

use crate::dsl::{CmpKind, Grid, KExpr, Kernel, Stmt};

/// The pipeline bucket a corpus entry falls into (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// CLSPV rejects the kernel (OpenCL features outside its support).
    CompileFails,
    /// Compiles, but dead-code elimination removes all shared accesses —
    /// trivially race-free, excluded from the evaluation.
    TriviallyRaceFree,
    /// Compiles, but uses features the verifier does not support
    /// (floating point and similar); only the baseline analyzes it.
    UnsupportedByVerifier,
    /// Fully analyzed by both tools.
    Verifiable,
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct KernelCase {
    /// Kernel name.
    pub name: String,
    /// Pipeline bucket.
    pub bucket: Bucket,
    /// The kernel, for buckets that carry one (all but `CompileFails`).
    pub kernel: Option<Kernel>,
    /// Grid used in the evaluation.
    pub grid: Grid,
    /// Ground-truth racyness for `Verifiable` entries.
    pub expected_racy: Option<bool>,
}

fn grid() -> Grid {
    Grid {
        local: 2,
        groups: 2,
    }
}

/// The eleven verifiable kernel families; `variant` selects parameters.
fn verifiable_kernel(family: usize, variant: u32) -> (Kernel, bool) {
    let v = u64::from(variant);
    match family {
        // Disjoint per-thread writes: race-free.
        0 => {
            let mut k = Kernel::new(format!("disjoint_writes_{variant}"));
            let b = k.buffer("out", 16);
            k.push(Stmt::store(
                b,
                KExpr::add(KExpr::Gid, KExpr::Const(0)),
                KExpr::Const(v + 1),
            ));
            (k, false)
        }
        // Everyone writes one cell: racy.
        1 => {
            let mut k = Kernel::new(format!("shared_cell_{variant}"));
            let b = k.buffer("out", 4);
            k.push(Stmt::store(b, KExpr::Const(v % 4), KExpr::Const(1)));
            (k, true)
        }
        // Barrier-separated neighbour read. The *workgroup* barrier does
        // not synchronize across workgroups, so the boundary pair races —
        // a scope subtlety the scope-unaware baseline misses.
        2 => {
            let mut k = Kernel::new(format!("barrier_phases_{variant}"));
            let b = k.buffer("buf", 16);
            let l = k.local();
            k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(v + 1)));
            k.push(Stmt::Barrier { scope: Scope::Wg });
            k.push(Stmt::load(l, b, KExpr::add(KExpr::Gid, KExpr::Const(1))));
            (k, true)
        }
        // Neighbour read without a barrier: racy.
        3 => {
            let mut k = Kernel::new(format!("neighbour_race_{variant}"));
            let b = k.buffer("buf", 16);
            let l = k.local();
            k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(1)));
            k.push(Stmt::load(
                l,
                b,
                KExpr::add(KExpr::Gid, KExpr::Const(v % 3 + 1)),
            ));
            (k, true)
        }
        // Atomic counter: race-free.
        4 => {
            let mut k = Kernel::new(format!("atomic_counter_{variant}"));
            let b = k.buffer("counter", 1);
            let l = k.local();
            k.push(Stmt::AtomicAdd {
                dst: l,
                buf: b,
                index: KExpr::Const(0),
                operand: KExpr::Const(v + 1),
                order: MemOrder::AcqRel,
                scope: Scope::Dv,
            });
            (k, false)
        }
        // Atomic counter used as a unique index into a buffer: race-free.
        5 => {
            let mut k = Kernel::new(format!("atomic_index_{variant}"));
            let c = k.buffer("counter", 1);
            let b = k.buffer("out", 16);
            let l = k.local();
            k.push(Stmt::AtomicAdd {
                dst: l,
                buf: c,
                index: KExpr::Const(0),
                operand: KExpr::Const(1),
                order: MemOrder::AcqRel,
                scope: Scope::Dv,
            });
            k.push(Stmt::store(b, KExpr::Local(l), KExpr::Const(v)));
            (k, false)
        }
        // Plain counter increment: racy.
        6 => {
            let mut k = Kernel::new(format!("plain_counter_{variant}"));
            let b = k.buffer("counter", 1);
            let l = k.local();
            k.push(Stmt::load(l, b, KExpr::Const(0)));
            k.push(Stmt::store(
                b,
                KExpr::Const(0),
                KExpr::add(KExpr::Local(l), KExpr::Const(v + 1)),
            ));
            (k, true)
        }
        // CAS lock protecting a critical section: race-free (this is the
        // family where the baseline reports its false positive).
        7 => {
            let mut k = Kernel::new(format!("caslock_cs_{variant}"));
            let lock = k.buffer("lock", 1);
            let x = k.buffer("x", 1);
            let got = k.local();
            k.push(Stmt::Assign {
                dst: got,
                value: KExpr::Const(1),
            });
            k.push(Stmt::While {
                a: KExpr::Local(got),
                cmp: CmpKind::Ne,
                b: KExpr::Const(0),
                body: vec![Stmt::AtomicCas {
                    dst: got,
                    buf: lock,
                    index: KExpr::Const(0),
                    expected: KExpr::Const(0),
                    new: KExpr::Const(1),
                    order: MemOrder::Acquire,
                    scope: Scope::Dv,
                }],
            });
            k.push(Stmt::store(x, KExpr::Const(0), KExpr::Const(v + 1)));
            k.push(Stmt::AtomicStore {
                buf: lock,
                index: KExpr::Const(0),
                value: KExpr::Const(0),
                order: MemOrder::Release,
                scope: Scope::Dv,
            });
            (k, false)
        }
        // Message passing with release/acquire atomics: race-free.
        8 => {
            let mut k = Kernel::new(format!("mp_relacq_{variant}"));
            let data = k.buffer("data", 1);
            let flag = k.buffer("flag", 1);
            let l = k.local();
            let d = k.local();
            k.push(Stmt::If {
                a: KExpr::Gid,
                cmp: CmpKind::Eq,
                b: KExpr::Const(0),
                then: vec![
                    Stmt::store(data, KExpr::Const(0), KExpr::Const(v + 1)),
                    Stmt::AtomicStore {
                        buf: flag,
                        index: KExpr::Const(0),
                        value: KExpr::Const(1),
                        order: MemOrder::Release,
                        scope: Scope::Dv,
                    },
                ],
                els: vec![
                    Stmt::AtomicLoad {
                        dst: l,
                        buf: flag,
                        index: KExpr::Const(0),
                        order: MemOrder::Acquire,
                        scope: Scope::Dv,
                    },
                    Stmt::If {
                        a: KExpr::Local(l),
                        cmp: CmpKind::Eq,
                        b: KExpr::Const(1),
                        then: vec![Stmt::load(d, data, KExpr::Const(0))],
                        els: vec![],
                    },
                ],
            });
            (k, false)
        }
        // Message passing with relaxed flag: racy.
        9 => {
            let (mut k, _) = verifiable_kernel(8, variant);
            k.name = format!("mp_relaxed_{variant}");
            // Weaken the release/acquire pair to relaxed.
            fn relax(stmts: &mut [Stmt]) {
                for s in stmts {
                    match s {
                        Stmt::AtomicStore { order, .. } | Stmt::AtomicLoad { order, .. } => {
                            *order = MemOrder::Relaxed
                        }
                        Stmt::If { then, els, .. } => {
                            relax(then);
                            relax(els);
                        }
                        Stmt::While { body, .. } => relax(body),
                        _ => {}
                    }
                }
            }
            relax(&mut k.body);
            (k, true)
        }
        // Lid-indexed writes: distinct lids per group but equal lids in
        // different groups write different cells only if offset by wgid:
        // include both a correct and an incorrect variant.
        _ => {
            let mut k = Kernel::new(format!("lid_index_{variant}"));
            let b = k.buffer("out", 16);
            if variant.is_multiple_of(2) {
                // out[lid]: threads in different groups collide: racy.
                k.push(Stmt::store(b, KExpr::Lid, KExpr::Const(1)));
                (k, true)
            } else {
                // out[gid]: race-free.
                k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(1)));
                (k, false)
            }
        }
    }
}

/// A compile-failing placeholder (OpenCL features CLSPV rejects).
const COMPILE_FAIL_FEATURES: [&str; 5] = [
    "printf",
    "function-pointers",
    "variable-length-arrays",
    "images",
    "pipes",
];

/// Builds the full 486-entry corpus with the paper's bucket sizes:
/// 225 compile failures, 84 trivially race-free, 111 unsupported by the
/// verifier, 66 verifiable.
pub fn gpuverify_corpus() -> Vec<KernelCase> {
    let mut out = Vec::with_capacity(486);
    for i in 0..225 {
        out.push(KernelCase {
            name: format!(
                "compile_fail_{}_{i}",
                COMPILE_FAIL_FEATURES[i % COMPILE_FAIL_FEATURES.len()]
            ),
            bucket: Bucket::CompileFails,
            kernel: None,
            grid: grid(),
            expected_racy: None,
        });
    }
    for i in 0..84 {
        // A kernel whose loads are unused: DCE leaves nothing shared.
        let mut k = Kernel::new(format!("dce_trivial_{i}"));
        let b = k.buffer("in", 8);
        let l = k.local();
        k.push(Stmt::load(l, b, KExpr::Gid));
        out.push(KernelCase {
            name: k.name.clone(),
            bucket: Bucket::TriviallyRaceFree,
            kernel: Some(k),
            grid: grid(),
            expected_racy: Some(false),
        });
    }
    for i in 0..111 {
        // Float-heavy kernels: representable in the DSL only abstractly;
        // the baseline analyzes their access patterns, the verifier
        // reports them unsupported. Alternate racy / race-free shapes.
        let (k, racy) = verifiable_kernel((i % 4) * 2 + 1, i as u32);
        let mut k = k;
        k.name = format!("float_{i}_{}", k.name);
        out.push(KernelCase {
            name: k.name.clone(),
            bucket: Bucket::UnsupportedByVerifier,
            kernel: Some(k),
            grid: grid(),
            expected_racy: Some(racy),
        });
    }
    // The 66 verifiable kernels, weighted so the tool-agreement profile
    // matches the paper's Table 6 (59/66 agree; the disagreements are the
    // baseline's lock/hb/atomic-index false positives plus one
    // scope-unawareness false negative).
    let verifiable_mix: &[(usize, u32)] = &[
        (0, 12), // disjoint writes            (agree: race-free)
        (1, 12), // shared cell                (agree: racy)
        (3, 12), // neighbour race             (agree: racy)
        (4, 12), // atomic counter             (agree: race-free)
        (6, 6),  // plain counter              (agree: racy)
        (10, 5), // lid/gid indexing           (agree)
        (7, 2),  // caslock critical section   (baseline false positive)
        (8, 2),  // MP with release/acquire    (baseline false positive)
        (5, 2),  // atomic unique index        (baseline false positive)
        (2, 1),  // cross-wg barrier neighbour (baseline false negative)
    ];
    for &(family, count) in verifiable_mix {
        for variant in 0..count {
            let (k, racy) = verifiable_kernel(family, variant);
            out.push(KernelCase {
                name: k.name.clone(),
                bucket: Bucket::Verifiable,
                kernel: Some(k),
                grid: grid(),
                expected_racy: Some(racy),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_buckets_match_the_paper() {
        let c = gpuverify_corpus();
        assert_eq!(c.len(), 486);
        let count = |b: Bucket| c.iter().filter(|k| k.bucket == b).count();
        assert_eq!(count(Bucket::CompileFails), 225);
        assert_eq!(count(Bucket::TriviallyRaceFree), 84);
        assert_eq!(count(Bucket::UnsupportedByVerifier), 111);
        assert_eq!(count(Bucket::Verifiable), 66);
    }

    #[test]
    fn verifiable_kernels_emit_and_lower() {
        for case in gpuverify_corpus()
            .iter()
            .filter(|c| c.bucket == Bucket::Verifiable)
        {
            let k = case.kernel.as_ref().unwrap();
            let text = crate::emit_spirv(k);
            let m = crate::parse_spirv(&text).expect("parses");
            let p = crate::lower(&m, case.grid).expect("lowers");
            assert_eq!(p.threads.len() as u32, case.grid.threads(), "{}", case.name);
        }
    }

    #[test]
    fn corpus_has_both_racy_and_race_free_kernels() {
        let c = gpuverify_corpus();
        let verifiable: Vec<_> = c
            .iter()
            .filter(|k| k.bucket == Bucket::Verifiable)
            .collect();
        assert!(verifiable.iter().any(|k| k.expected_racy == Some(true)));
        assert!(verifiable.iter().any(|k| k.expected_racy == Some(false)));
    }
}
