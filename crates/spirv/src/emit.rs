//! Emitting disassembled SPIR-V text from kernels (the CLSPV substitute).

use gpumc_ir::{MemOrder, Scope};

use crate::dsl::{CmpKind, KExpr, Kernel, LocalId, Stmt};

/// SPIR-V scope constant values.
fn scope_value(s: Scope) -> u32 {
    match s {
        Scope::Dv => 1, // Device
        Scope::Wg => 2, // Workgroup
        Scope::Sg => 3, // Subgroup
        Scope::Qf => 5, // QueueFamily
        // PTX scopes do not occur in kernels; map conservatively.
        Scope::Cta => 2,
        Scope::Gpu | Scope::Sys => 1,
    }
}

/// SPIR-V memory-semantics mask for an order (UniformMemory class).
fn semantics_value(o: MemOrder) -> u32 {
    const UNIFORM: u32 = 0x40;
    match o {
        MemOrder::Weak | MemOrder::Relaxed => 0,
        MemOrder::Acquire => 0x2 | UNIFORM,
        MemOrder::Release => 0x4 | UNIFORM,
        MemOrder::AcqRel | MemOrder::Sc => 0x8 | UNIFORM,
    }
}

struct Emitter {
    out: String,
    next_id: u32,
    constants: Vec<(u64, String)>,
    const_decls: String,
}

impl Emitter {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("%{prefix}{}", self.next_id)
    }

    fn line(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn constant(&mut self, v: u64) -> String {
        if let Some((_, id)) = self.constants.iter().find(|(c, _)| *c == v) {
            return id.clone();
        }
        let id = format!("%uint_{v}");
        self.const_decls
            .push_str(&format!("{id} = OpConstant %uint {v}\n"));
        self.constants.push((v, id.clone()));
        id
    }

    /// Evaluates an expression, returning the SSA id (or constant id).
    fn expr(&mut self, e: &KExpr) -> String {
        match e {
            KExpr::Const(v) => self.constant(*v),
            KExpr::Gid => {
                let t = self.fresh("t");
                self.line(&format!("{t} = OpLoad %uint %gid"));
                t
            }
            KExpr::Lid => {
                let t = self.fresh("t");
                self.line(&format!("{t} = OpLoad %uint %lid"));
                t
            }
            KExpr::WgId => {
                let t = self.fresh("t");
                self.line(&format!("{t} = OpLoad %uint %wgid"));
                t
            }
            KExpr::Local(LocalId(l)) => {
                let t = self.fresh("t");
                self.line(&format!("{t} = OpLoad %uint %l{l}"));
                t
            }
            KExpr::Add(a, b) => self.binop("OpIAdd", a, b),
            KExpr::Sub(a, b) => self.binop("OpISub", a, b),
            KExpr::And(a, b) => self.binop("OpBitwiseAnd", a, b),
        }
    }

    fn binop(&mut self, op: &str, a: &KExpr, b: &KExpr) -> String {
        let (ia, ib) = (self.expr(a), self.expr(b));
        let t = self.fresh("t");
        self.line(&format!("{t} = {op} %uint {ia} {ib}"));
        t
    }

    fn access(&mut self, buf: u32, index: &KExpr) -> String {
        let idx = self.expr(index);
        let p = self.fresh("p");
        self.line(&format!("{p} = OpAccessChain %ptr_sb %buf{buf} {idx}"));
        p
    }

    fn scope_sem(&mut self, scope: Scope, order: MemOrder) -> (String, String) {
        let s = self.constant(u64::from(scope_value(scope)));
        let m = self.constant(u64::from(semantics_value(order)));
        (s, m)
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Store { buf, index, value } => {
                let v = self.expr(value);
                let p = self.access(buf.0, index);
                self.line(&format!("OpStore {p} {v}"));
            }
            Stmt::Load { dst, buf, index } => {
                let p = self.access(buf.0, index);
                let t = self.fresh("t");
                self.line(&format!("{t} = OpLoad %uint {p}"));
                self.line(&format!("OpStore %l{} {t}", dst.0));
            }
            Stmt::AtomicStore {
                buf,
                index,
                value,
                order,
                scope,
            } => {
                let v = self.expr(value);
                let p = self.access(buf.0, index);
                let (sc, sem) = self.scope_sem(*scope, *order);
                self.line(&format!("OpAtomicStore {p} {sc} {sem} {v}"));
            }
            Stmt::AtomicLoad {
                dst,
                buf,
                index,
                order,
                scope,
            } => {
                let p = self.access(buf.0, index);
                let (sc, sem) = self.scope_sem(*scope, *order);
                let t = self.fresh("t");
                self.line(&format!("{t} = OpAtomicLoad %uint {p} {sc} {sem}"));
                self.line(&format!("OpStore %l{} {t}", dst.0));
            }
            Stmt::AtomicAdd {
                dst,
                buf,
                index,
                operand,
                order,
                scope,
            } => {
                let v = self.expr(operand);
                let p = self.access(buf.0, index);
                let (sc, sem) = self.scope_sem(*scope, *order);
                let t = self.fresh("t");
                self.line(&format!("{t} = OpAtomicIAdd %uint {p} {sc} {sem} {v}"));
                self.line(&format!("OpStore %l{} {t}", dst.0));
            }
            Stmt::AtomicCas {
                dst,
                buf,
                index,
                expected,
                new,
                order,
                scope,
            } => {
                let e = self.expr(expected);
                let n = self.expr(new);
                let p = self.access(buf.0, index);
                let (sc, sem) = self.scope_sem(*scope, *order);
                let t = self.fresh("t");
                self.line(&format!(
                    "{t} = OpAtomicCompareExchange %uint {p} {sc} {sem} {sem} {n} {e}"
                ));
                self.line(&format!("OpStore %l{} {t}", dst.0));
            }
            Stmt::Assign { dst, value } => {
                let v = self.expr(value);
                self.line(&format!("OpStore %l{} {v}", dst.0));
            }
            Stmt::Barrier { scope } => {
                let (sc, sem) = self.scope_sem(*scope, MemOrder::AcqRel);
                self.line(&format!("OpControlBarrier {sc} {sc} {sem}"));
            }
            Stmt::Fence { order, scope } => {
                let (sc, sem) = self.scope_sem(*scope, *order);
                self.line(&format!("OpMemoryBarrier {sc} {sem}"));
            }
            Stmt::If {
                a,
                cmp,
                b,
                then,
                els,
            } => {
                let ia = self.expr(a);
                let ib = self.expr(b);
                let c = self.fresh("c");
                let op = match cmp {
                    CmpKind::Eq => "OpIEqual",
                    CmpKind::Ne => "OpINotEqual",
                };
                self.line(&format!("{c} = {op} %bool {ia} {ib}"));
                let lt = self.fresh("then");
                let le = self.fresh("else");
                let lm = self.fresh("merge");
                self.line(&format!("OpBranchConditional {c} {lt} {le}"));
                self.line(&format!("{lt} = OpLabel"));
                for s in then {
                    self.stmt(s);
                }
                self.line(&format!("OpBranch {lm}"));
                self.line(&format!("{le} = OpLabel"));
                for s in els {
                    self.stmt(s);
                }
                self.line(&format!("OpBranch {lm}"));
                self.line(&format!("{lm} = OpLabel"));
            }
            Stmt::While { a, cmp, b, body } => {
                let lh = self.fresh("head");
                let lb = self.fresh("body");
                let lx = self.fresh("exit");
                self.line(&format!("OpBranch {lh}"));
                self.line(&format!("{lh} = OpLabel"));
                let ia = self.expr(a);
                let ib = self.expr(b);
                let c = self.fresh("c");
                let op = match cmp {
                    CmpKind::Eq => "OpIEqual",
                    CmpKind::Ne => "OpINotEqual",
                };
                self.line(&format!("{c} = {op} %bool {ia} {ib}"));
                self.line(&format!("OpBranchConditional {c} {lb} {lx}"));
                self.line(&format!("{lb} = OpLabel"));
                for s in body {
                    self.stmt(s);
                }
                self.line(&format!("OpBranch {lh}"));
                self.line(&format!("{lx} = OpLabel"));
            }
        }
    }
}

/// Lowers a kernel to disassembled SPIR-V text.
pub fn emit_spirv(k: &Kernel) -> String {
    let mut e = Emitter {
        out: String::new(),
        next_id: 0,
        constants: Vec::new(),
        const_decls: String::new(),
    };
    e.line("; SPIR-V");
    e.line(&format!("; gpumc-clspv: kernel `{}`", k.name));
    e.line("OpCapability Shader");
    e.line("OpCapability VulkanMemoryModel");
    e.line("OpMemoryModel Logical Vulkan");
    e.line(&format!(
        "OpEntryPoint GLCompute %main \"{}\" %gid %lid %wgid",
        k.name
    ));
    for (i, (name, size)) in k.buffers.iter().enumerate() {
        e.line(&format!("; buffer %buf{i} \"{name}\" size={size}"));
        e.line(&format!("OpDecorate %buf{i} DescriptorSet 0"));
        e.line(&format!("OpDecorate %buf{i} Binding {i}"));
    }
    e.line("%uint = OpTypeInt 32 0");
    e.line("%bool = OpTypeBool");
    e.line("%ptr_sb = OpTypePointer StorageBuffer %uint");
    e.line("%ptr_fn = OpTypePointer Function %uint");
    for (i, _) in k.buffers.iter().enumerate() {
        e.line(&format!("%buf{i} = OpVariable %ptr_sb StorageBuffer"));
    }
    // Body into a temporary buffer so constants can precede the function.
    let mut body = Emitter {
        out: String::new(),
        next_id: e.next_id,
        constants: std::mem::take(&mut e.constants),
        const_decls: std::mem::take(&mut e.const_decls),
    };
    body.line("%main = OpFunction %uint None %fnty");
    body.line("%entry = OpLabel");
    for l in 0..k.locals {
        body.line(&format!("%l{l} = OpVariable %ptr_fn Function"));
    }
    for s in &k.body {
        body.stmt(s);
    }
    body.line("OpReturn");
    body.line("OpFunctionEnd");
    e.out.push_str(&body.const_decls);
    e.out.push_str(&body.out);
    e.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Kernel;

    #[test]
    fn emits_header_and_buffers() {
        let mut k = Kernel::new("simple");
        let b = k.buffer("data", 4);
        k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(1)));
        let t = emit_spirv(&k);
        assert!(t.contains("OpMemoryModel Logical Vulkan"));
        assert!(t.contains("OpEntryPoint GLCompute %main \"simple\""));
        assert!(t.contains("%buf0 = OpVariable %ptr_sb StorageBuffer"));
        assert!(t.contains("OpAccessChain %ptr_sb %buf0"));
        assert!(t.contains("OpStore"));
    }

    #[test]
    fn emits_atomics_with_scope_semantics() {
        let mut k = Kernel::new("a");
        let b = k.buffer("x", 1);
        let l = k.local();
        k.push(Stmt::AtomicAdd {
            dst: l,
            buf: b,
            index: KExpr::Const(0),
            operand: KExpr::Const(1),
            order: MemOrder::AcqRel,
            scope: Scope::Dv,
        });
        let t = emit_spirv(&k);
        assert!(t.contains("OpAtomicIAdd %uint"));
        assert!(t.contains("%uint_1 = OpConstant %uint 1")); // Device scope
        assert!(t.contains("OpConstant %uint 72")); // AcqRel | Uniform
    }

    #[test]
    fn emits_structured_control_flow() {
        let mut k = Kernel::new("c");
        let b = k.buffer("x", 1);
        let l = k.local();
        k.push(Stmt::While {
            a: KExpr::Local(l),
            cmp: CmpKind::Ne,
            b: KExpr::Const(1),
            body: vec![Stmt::AtomicLoad {
                dst: l,
                buf: b,
                index: KExpr::Const(0),
                order: MemOrder::Acquire,
                scope: Scope::Dv,
            }],
        });
        let t = emit_spirv(&k);
        assert!(t.contains("OpBranchConditional"));
        assert!(t.contains("OpINotEqual %bool"));
        assert_eq!(t.matches("OpLabel").count(), 4); // entry+head+body+exit
    }
}
