//! The structured kernel language (OpenCL stand-in).

use gpumc_ir::{MemOrder, Scope};

/// A compute grid: `local` threads per workgroup, `groups` workgroups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grid {
    /// Threads per workgroup.
    pub local: u32,
    /// Number of workgroups.
    pub groups: u32,
}

impl Grid {
    /// Total number of threads.
    pub fn threads(&self) -> u32 {
        self.local * self.groups
    }
}

/// Identifier of a kernel buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u32);

/// Identifier of a kernel local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

/// Integer expressions over thread built-ins and locals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KExpr {
    /// A constant.
    Const(u64),
    /// Global invocation id.
    Gid,
    /// Local invocation id (within the workgroup).
    Lid,
    /// Workgroup id.
    WgId,
    /// A local variable.
    Local(LocalId),
    /// Addition.
    Add(Box<KExpr>, Box<KExpr>),
    /// Subtraction (wrapping).
    Sub(Box<KExpr>, Box<KExpr>),
    /// Bitwise and (used for `tid & 1` style index math).
    And(Box<KExpr>, Box<KExpr>),
}

impl KExpr {
    /// `a + b`
    ///
    /// A constructor taking two operands, not `std::ops::Add` on `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Add(Box::new(a), Box::new(b))
    }

    /// `a & b`
    pub fn and(a: KExpr, b: KExpr) -> KExpr {
        KExpr::And(Box::new(a), Box::new(b))
    }
}

/// Comparison kinds of branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Kernel statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `buf[index] = value` (plain store).
    Store {
        /// Target buffer.
        buf: BufferId,
        /// Element index.
        index: KExpr,
        /// Stored value.
        value: KExpr,
    },
    /// `local = buf[index]` (plain load).
    Load {
        /// Destination local.
        dst: LocalId,
        /// Source buffer.
        buf: BufferId,
        /// Element index.
        index: KExpr,
    },
    /// `atomic_store_explicit(&buf[index], value, order, scope)`
    AtomicStore {
        /// Target buffer.
        buf: BufferId,
        /// Element index.
        index: KExpr,
        /// Stored value.
        value: KExpr,
        /// Memory order.
        order: MemOrder,
        /// Scope.
        scope: Scope,
    },
    /// `local = atomic_load_explicit(&buf[index], order, scope)`
    AtomicLoad {
        /// Destination local.
        dst: LocalId,
        /// Source buffer.
        buf: BufferId,
        /// Element index.
        index: KExpr,
        /// Memory order.
        order: MemOrder,
        /// Scope.
        scope: Scope,
    },
    /// `local = atomic_fetch_add(&buf[index], operand)`
    AtomicAdd {
        /// Destination local (old value).
        dst: LocalId,
        /// Target buffer.
        buf: BufferId,
        /// Element index.
        index: KExpr,
        /// Added value.
        operand: KExpr,
        /// Memory order.
        order: MemOrder,
        /// Scope.
        scope: Scope,
    },
    /// `local = atomic_compare_exchange(&buf[index], expected, new)`;
    /// the local receives the *old* value.
    AtomicCas {
        /// Destination local (old value).
        dst: LocalId,
        /// Target buffer.
        buf: BufferId,
        /// Element index.
        index: KExpr,
        /// Expected value.
        expected: KExpr,
        /// Replacement value.
        new: KExpr,
        /// Memory order.
        order: MemOrder,
        /// Scope.
        scope: Scope,
    },
    /// `local = expr` (ALU).
    Assign {
        /// Destination local.
        dst: LocalId,
        /// Value.
        value: KExpr,
    },
    /// `barrier(CLK_GLOBAL_MEM_FENCE)` — an `OpControlBarrier` with
    /// acquire-release memory semantics.
    Barrier {
        /// Barrier scope.
        scope: Scope,
    },
    /// A standalone memory fence.
    Fence {
        /// Memory order.
        order: MemOrder,
        /// Scope.
        scope: Scope,
    },
    /// `if (a cmp b) { then } else { els }`
    If {
        /// Left comparison operand.
        a: KExpr,
        /// Comparison.
        cmp: CmpKind,
        /// Right comparison operand.
        b: KExpr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// `while (a cmp b) { body }` — used for spinloops.
    While {
        /// Left comparison operand (re-evaluated each iteration).
        a: KExpr,
        /// Comparison.
        cmp: CmpKind,
        /// Right comparison operand.
        b: KExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Shorthand for a plain store.
    pub fn store(buf: BufferId, index: KExpr, value: KExpr) -> Stmt {
        Stmt::Store { buf, index, value }
    }

    /// Shorthand for a plain load.
    pub fn load(dst: LocalId, buf: BufferId, index: KExpr) -> Stmt {
        Stmt::Load { dst, buf, index }
    }
}

/// A kernel: buffers plus a statement list, executed by every thread of
/// a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Declared buffers: (name, element count).
    pub buffers: Vec<(String, u32)>,
    /// Number of local variables used.
    pub locals: u32,
    /// The body.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new(name: impl Into<String>) -> Kernel {
        Kernel {
            name: name.into(),
            buffers: Vec::new(),
            locals: 0,
            body: Vec::new(),
        }
    }

    /// Declares a buffer.
    pub fn buffer(&mut self, name: impl Into<String>, size: u32) -> BufferId {
        self.buffers.push((name.into(), size));
        BufferId(self.buffers.len() as u32 - 1)
    }

    /// Allocates a fresh local variable.
    pub fn local(&mut self) -> LocalId {
        self.locals += 1;
        LocalId(self.locals - 1)
    }

    /// Appends a statement.
    pub fn push(&mut self, s: Stmt) -> &mut Kernel {
        self.body.push(s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_building() {
        let mut k = Kernel::new("k");
        let b = k.buffer("data", 16);
        let l = k.local();
        k.push(Stmt::load(l, b, KExpr::Gid));
        k.push(Stmt::store(b, KExpr::Gid, KExpr::Local(l)));
        assert_eq!(k.buffers.len(), 1);
        assert_eq!(k.locals, 1);
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    fn grid_threads() {
        assert_eq!(
            Grid {
                local: 4,
                groups: 3
            }
            .threads(),
            12
        );
    }
}
