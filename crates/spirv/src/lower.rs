//! Instantiating a SPIR-V module for a concrete thread grid.

use std::collections::HashMap;

use gpumc_ir::{
    AccessAttrs, AluOp, Arch, CmpOp, FenceAttrs, Instruction, MemOrder, MemRef, MemoryDecl,
    Operand, Program, Reg, RmwOp, Scope, Thread, ThreadPos,
};

use crate::dsl::Grid;
use crate::parse::{Module, SpvInstr};

/// A lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(m: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError { message: m.into() })
}

fn scope_of(v: u64) -> Scope {
    match v {
        1 => Scope::Dv,
        2 => Scope::Wg,
        3 => Scope::Sg,
        5 => Scope::Qf,
        _ => Scope::Dv,
    }
}

fn order_of(sem: u64) -> MemOrder {
    if sem & 0x8 != 0 {
        MemOrder::AcqRel
    } else if sem & 0x4 != 0 {
        MemOrder::Release
    } else if sem & 0x2 != 0 {
        MemOrder::Acquire
    } else {
        MemOrder::Relaxed
    }
}

/// Per-thread SSA value.
#[derive(Debug, Clone, Copy)]
enum V {
    Const(u64),
    Reg(Reg),
}

impl V {
    fn operand(self) -> Operand {
        match self {
            V::Const(c) => Operand::Const(c),
            V::Reg(r) => Operand::Reg(r),
        }
    }
}

/// Instantiates a module for every thread of `grid`, producing a Vulkan
/// program (one IR thread per invocation; the built-in ids become
/// constants).
///
/// # Errors
///
/// Fails on instructions outside the supported subset.
pub fn lower(module: &Module, grid: Grid) -> Result<Program, LowerError> {
    let mut program = Program::new(Arch::Vulkan);
    program.name = module.name.clone();
    let mut buf_ids = HashMap::new();
    for (id, name, size) in &module.buffers {
        let loc = program.declare_memory(MemoryDecl::array(name.clone(), *size));
        buf_ids.insert(id.clone(), loc);
    }
    for t in 0..grid.threads() {
        let lid = t % grid.local;
        let wgid = t / grid.local;
        let thread = lower_thread(module, &buf_ids, t, lid, wgid)?;
        program.add_thread(thread);
    }
    program
        .validate()
        .map_err(|e| LowerError { message: e.message })?;
    Ok(program)
}

fn lower_thread(
    module: &Module,
    buf_ids: &HashMap<String, gpumc_ir::LocId>,
    gid: u32,
    lid: u32,
    wgid: u32,
) -> Result<Thread, LowerError> {
    let mut th = Thread::new(format!("P{gid}"), ThreadPos::vulkan(0, wgid, 0));
    // Registers: locals first, then temporaries.
    let mut regs: HashMap<String, V> = HashMap::new();
    let mut local_reg: HashMap<String, Reg> = HashMap::new();
    let mut next_reg = 0u32;
    for l in &module.locals {
        local_reg.insert(l.clone(), Reg(next_reg));
        next_reg += 1;
    }
    // Labels.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut next_label = 0u32;
    let mut label_of = |name: &str, labels: &mut HashMap<String, u32>| {
        *labels.entry(name.to_string()).or_insert_with(|| {
            next_label += 1;
            next_label - 1
        })
    };
    // Access chains and comparisons resolved per SSA id.
    let mut chains: HashMap<String, (gpumc_ir::LocId, Operand)> = HashMap::new();
    let mut cmps: HashMap<String, (CmpOp, Operand, Operand)> = HashMap::new();

    let id = |tok: &String| tok.trim_start_matches('%').to_string();
    let value =
        |tok: &String, regs: &HashMap<String, V>, module: &Module| -> Result<V, LowerError> {
            let name = tok.trim_start_matches('%');
            if let Some(v) = module.constants.get(name) {
                return Ok(V::Const(*v));
            }
            match name {
                "gid" => return Ok(V::Const(u64::from(gid))),
                "lid" => return Ok(V::Const(u64::from(lid))),
                "wgid" => return Ok(V::Const(u64::from(wgid))),
                _ => {}
            }
            regs.get(name).copied().ok_or_else(|| LowerError {
                message: format!("unknown SSA id %{name}"),
            })
        };
    let const_value = |tok: &String, module: &Module| -> Result<u64, LowerError> {
        module
            .constants
            .get(tok.trim_start_matches('%'))
            .copied()
            .ok_or_else(|| LowerError {
                message: format!("scope/semantics operand `{tok}` must be a constant"),
            })
    };

    let attrs = |order: MemOrder, scope: Scope| {
        if order.is_atomic() {
            AccessAttrs::atomic(order, scope)
        } else {
            AccessAttrs {
                scope: Scope::Dv,
                nonpriv: true,
                ..AccessAttrs::weak()
            }
        }
    };

    for instr in &module.body {
        lower_instr(
            instr,
            &mut th,
            &mut regs,
            &local_reg,
            &mut next_reg,
            &mut labels,
            &mut label_of,
            &mut chains,
            &mut cmps,
            buf_ids,
            module,
            &id,
            &value,
            &const_value,
            &attrs,
        )?;
    }
    Ok(th)
}

#[allow(clippy::too_many_arguments)]
fn lower_instr(
    instr: &SpvInstr,
    th: &mut Thread,
    regs: &mut HashMap<String, V>,
    local_reg: &HashMap<String, Reg>,
    next_reg: &mut u32,
    labels: &mut HashMap<String, u32>,
    label_of: &mut impl FnMut(&str, &mut HashMap<String, u32>) -> u32,
    chains: &mut HashMap<String, (gpumc_ir::LocId, Operand)>,
    cmps: &mut HashMap<String, (CmpOp, Operand, Operand)>,
    buf_ids: &HashMap<String, gpumc_ir::LocId>,
    module: &Module,
    id: &impl Fn(&String) -> String,
    value: &impl Fn(&String, &HashMap<String, V>, &Module) -> Result<V, LowerError>,
    const_value: &impl Fn(&String, &Module) -> Result<u64, LowerError>,
    attrs: &impl Fn(MemOrder, Scope) -> AccessAttrs,
) -> Result<(), LowerError> {
    let fresh = |next_reg: &mut u32| {
        let r = Reg(*next_reg);
        *next_reg += 1;
        r
    };
    match instr.opcode.as_str() {
        "OpLabel" => {
            let r = instr.result.clone().unwrap_or_default();
            let l = label_of(&r, labels);
            th.push(Instruction::Label(l));
        }
        "OpBranch" => {
            let l = label_of(&id(&instr.operands[0]), labels);
            th.push(Instruction::Goto(l));
        }
        "OpBranchConditional" => {
            let c = id(&instr.operands[0]);
            let (cmp, a, b) = cmps.get(&c).copied().ok_or_else(|| LowerError {
                message: format!("condition %{c} not defined by OpIEqual/OpINotEqual"),
            })?;
            let then = label_of(&id(&instr.operands[1]), labels);
            let els = label_of(&id(&instr.operands[2]), labels);
            th.push(Instruction::Branch {
                cmp,
                a,
                b,
                target: then,
            });
            th.push(Instruction::Goto(els));
        }
        "OpIEqual" | "OpINotEqual" => {
            let a = value(&instr.operands[1], regs, module)?.operand();
            let b = value(&instr.operands[2], regs, module)?.operand();
            let cmp = if instr.opcode == "OpIEqual" {
                CmpOp::Eq
            } else {
                CmpOp::Ne
            };
            cmps.insert(instr.result.clone().unwrap_or_default(), (cmp, a, b));
        }
        "OpIAdd" | "OpISub" | "OpBitwiseAnd" => {
            let a = value(&instr.operands[1], regs, module)?;
            let b = value(&instr.operands[2], regs, module)?;
            let op = match instr.opcode.as_str() {
                "OpIAdd" => AluOp::Add,
                "OpISub" => AluOp::Sub,
                _ => AluOp::And,
            };
            let res = instr.result.clone().unwrap_or_default();
            if let (V::Const(x), V::Const(y)) = (a, b) {
                regs.insert(res, V::Const(gpumc_ir::Val::apply(op, x, y)));
            } else {
                let r = fresh(next_reg);
                th.push(Instruction::Alu {
                    dst: r,
                    op,
                    a: a.operand(),
                    b: b.operand(),
                });
                regs.insert(res, V::Reg(r));
            }
        }
        "OpAccessChain" => {
            let buf = id(&instr.operands[1]);
            let loc = *buf_ids.get(&buf).ok_or_else(|| LowerError {
                message: format!("unknown buffer %{buf}"),
            })?;
            let idx = value(&instr.operands[2], regs, module)?.operand();
            chains.insert(instr.result.clone().unwrap_or_default(), (loc, idx));
        }
        "OpLoad" => {
            let src = id(&instr.operands[1]);
            let res = instr.result.clone().unwrap_or_default();
            if let Some(r) = local_reg.get(&src) {
                regs.insert(res, V::Reg(*r));
            } else if matches!(src.as_str(), "gid" | "lid" | "wgid") {
                let v = value(&instr.operands[1], regs, module)?;
                regs.insert(res, v);
            } else if let Some(&(loc, idx)) = chains.get(&src) {
                let r = fresh(next_reg);
                th.push(Instruction::Load {
                    dst: r,
                    addr: MemRef { loc, index: idx },
                    attrs: attrs(MemOrder::Weak, Scope::Dv),
                });
                regs.insert(res, V::Reg(r));
            } else {
                return err(format!("OpLoad from unknown pointer %{src}"));
            }
        }
        "OpStore" => {
            let dst = id(&instr.operands[0]);
            let v = value(&instr.operands[1], regs, module)?;
            if let Some(r) = local_reg.get(&dst) {
                th.push(Instruction::Alu {
                    dst: *r,
                    op: AluOp::Mov,
                    a: v.operand(),
                    b: Operand::Const(0),
                });
            } else if let Some(&(loc, idx)) = chains.get(&dst) {
                th.push(Instruction::Store {
                    addr: MemRef { loc, index: idx },
                    src: v.operand(),
                    attrs: attrs(MemOrder::Weak, Scope::Dv),
                });
            } else {
                return err(format!("OpStore to unknown pointer %{dst}"));
            }
        }
        "OpAtomicLoad"
        | "OpAtomicStore"
        | "OpAtomicIAdd"
        | "OpAtomicExchange"
        | "OpAtomicCompareExchange" => {
            lower_atomic(
                instr,
                th,
                regs,
                next_reg,
                chains,
                module,
                id,
                value,
                const_value,
                attrs,
            )?;
        }
        "OpControlBarrier" => {
            let exec_scope = scope_of(const_value(&instr.operands[0], module)?);
            let sem = const_value(&instr.operands[2], module)?;
            let mut fence = FenceAttrs::new(order_of(sem), exec_scope);
            fence.sem_sc = 0b01;
            th.push(Instruction::Barrier {
                attrs: gpumc_ir::BarrierAttrs {
                    id: Operand::Const(0),
                    scope: Scope::Wg,
                    fence: Some(fence),
                },
            });
        }
        "OpMemoryBarrier" => {
            let scope = scope_of(const_value(&instr.operands[0], module)?);
            let sem = const_value(&instr.operands[1], module)?;
            let mut fence = FenceAttrs::new(order_of(sem), scope);
            fence.sem_sc = 0b01;
            th.push(Instruction::Fence { attrs: fence });
        }
        "OpReturn" => {}
        other => return err(format!("unsupported opcode {other}")),
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn lower_atomic(
    instr: &SpvInstr,
    th: &mut Thread,
    regs: &mut HashMap<String, V>,
    next_reg: &mut u32,
    chains: &HashMap<String, (gpumc_ir::LocId, Operand)>,
    module: &Module,
    id: &impl Fn(&String) -> String,
    value: &impl Fn(&String, &HashMap<String, V>, &Module) -> Result<V, LowerError>,
    const_value: &impl Fn(&String, &Module) -> Result<u64, LowerError>,
    attrs: &impl Fn(MemOrder, Scope) -> AccessAttrs,
) -> Result<(), LowerError> {
    let fresh = |next_reg: &mut u32| {
        let r = Reg(*next_reg);
        *next_reg += 1;
        r
    };
    // Operand layout: value-producing atomics start with the type id.
    let (ptr_idx, scope_idx, sem_idx) = match instr.opcode.as_str() {
        "OpAtomicStore" => (0, 1, 2),
        _ => (1, 2, 3),
    };
    let ptr = id(&instr.operands[ptr_idx]);
    let &(loc, index) = chains.get(&ptr).ok_or_else(|| LowerError {
        message: format!("atomic on unknown pointer %{ptr}"),
    })?;
    let scope = scope_of(const_value(&instr.operands[scope_idx], module)?);
    let mut order = order_of(const_value(&instr.operands[sem_idx], module)?);
    if order == MemOrder::Weak {
        order = MemOrder::Relaxed;
    }
    let a = attrs(order, scope);
    let addr = MemRef { loc, index };
    match instr.opcode.as_str() {
        "OpAtomicStore" => {
            let v = value(&instr.operands[3], regs, module)?;
            th.push(Instruction::Store {
                addr,
                src: v.operand(),
                attrs: a,
            });
        }
        "OpAtomicLoad" => {
            let r = fresh(next_reg);
            th.push(Instruction::Load {
                dst: r,
                addr,
                attrs: a,
            });
            regs.insert(instr.result.clone().unwrap_or_default(), V::Reg(r));
        }
        "OpAtomicIAdd" | "OpAtomicExchange" => {
            let v = value(&instr.operands[4], regs, module)?;
            let r = fresh(next_reg);
            th.push(Instruction::Rmw {
                dst: r,
                addr,
                op: if instr.opcode == "OpAtomicIAdd" {
                    RmwOp::Add
                } else {
                    RmwOp::Exchange
                },
                operand: v.operand(),
                attrs: a,
            });
            regs.insert(instr.result.clone().unwrap_or_default(), V::Reg(r));
        }
        "OpAtomicCompareExchange" => {
            // ... %ptr %scope %semEq %semNeq %new %expected
            let new = value(&instr.operands[5], regs, module)?;
            let expected = value(&instr.operands[6], regs, module)?;
            let r = fresh(next_reg);
            th.push(Instruction::Rmw {
                dst: r,
                addr,
                op: RmwOp::Cas {
                    expected: expected.operand(),
                },
                operand: new.operand(),
                attrs: a,
            });
            regs.insert(instr.result.clone().unwrap_or_default(), V::Reg(r));
        }
        _ => unreachable!(),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{CmpKind, Grid, KExpr, Kernel, Stmt};
    use crate::emit::emit_spirv;
    use crate::parse::parse_spirv;

    fn pipeline(k: &Kernel, grid: Grid) -> Program {
        lower(&parse_spirv(&emit_spirv(k)).unwrap(), grid).unwrap()
    }

    #[test]
    fn disjoint_writes_lower_to_constant_indices() {
        let mut k = Kernel::new("disjoint");
        let b = k.buffer("out", 8);
        k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(1)));
        let p = pipeline(
            &k,
            Grid {
                local: 2,
                groups: 2,
            },
        );
        assert_eq!(p.threads.len(), 4);
        // Each thread stores to its own constant index.
        for (t, th) in p.threads.iter().enumerate() {
            match &th.instructions[..] {
                [Instruction::Label(_), Instruction::Store { addr, .. }] => {
                    assert_eq!(addr.index, Operand::Const(t as u64));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn spinloop_lowers_to_labels_and_branches() {
        let mut k = Kernel::new("spin");
        let b = k.buffer("flag", 1);
        let l = k.local();
        k.push(Stmt::While {
            a: KExpr::Local(l),
            cmp: CmpKind::Ne,
            b: KExpr::Const(1),
            body: vec![Stmt::AtomicLoad {
                dst: l,
                buf: b,
                index: KExpr::Const(0),
                order: MemOrder::Acquire,
                scope: Scope::Dv,
            }],
        });
        let p = pipeline(
            &k,
            Grid {
                local: 1,
                groups: 1,
            },
        );
        let th = &p.threads[0];
        assert!(th
            .instructions
            .iter()
            .any(|i| matches!(i, Instruction::Branch { .. })));
        assert!(th.instructions.iter().any(|i| matches!(
            i,
            Instruction::Load { attrs, .. } if attrs.order == MemOrder::Acquire
        )));
        // The program unrolls and compiles.
        let g = gpumc_ir::compile(&gpumc_ir::unroll(&p, 2).unwrap());
        assert!(g.n_events() > 2);
    }

    #[test]
    fn barriers_and_fences_lower() {
        let mut k = Kernel::new("sync");
        let b = k.buffer("x", 1);
        k.push(Stmt::store(b, KExpr::Const(0), KExpr::Const(1)));
        k.push(Stmt::Barrier { scope: Scope::Wg });
        k.push(Stmt::Fence {
            order: MemOrder::Release,
            scope: Scope::Dv,
        });
        let p = pipeline(
            &k,
            Grid {
                local: 2,
                groups: 1,
            },
        );
        let th = &p.threads[0];
        assert!(th
            .instructions
            .iter()
            .any(|i| matches!(i, Instruction::Barrier { .. })));
        assert!(th.instructions.iter().any(|i| matches!(
            i,
            Instruction::Fence { attrs } if attrs.order == MemOrder::Release
        )));
    }

    #[test]
    fn atomic_cas_and_add_lower_to_rmws() {
        let mut k = Kernel::new("rmw");
        let b = k.buffer("c", 1);
        let l1 = k.local();
        let l2 = k.local();
        k.push(Stmt::AtomicAdd {
            dst: l1,
            buf: b,
            index: KExpr::Const(0),
            operand: KExpr::Const(1),
            order: MemOrder::AcqRel,
            scope: Scope::Dv,
        });
        k.push(Stmt::AtomicCas {
            dst: l2,
            buf: b,
            index: KExpr::Const(0),
            expected: KExpr::Const(0),
            new: KExpr::Const(9),
            order: MemOrder::Acquire,
            scope: Scope::Dv,
        });
        let p = pipeline(
            &k,
            Grid {
                local: 1,
                groups: 1,
            },
        );
        let rmws: Vec<_> = p.threads[0]
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Rmw { .. }))
            .collect();
        assert_eq!(rmws.len(), 2);
    }

    #[test]
    fn workgroup_placement_follows_grid() {
        let mut k = Kernel::new("grid");
        let b = k.buffer("x", 1);
        let l = k.local();
        k.push(Stmt::load(l, b, KExpr::Const(0)));
        let p = pipeline(
            &k,
            Grid {
                local: 2,
                groups: 3,
            },
        );
        let wgs: Vec<u32> = p.threads.iter().map(|t| t.pos.coords()[1]).collect();
        assert_eq!(wgs, vec![0, 0, 1, 1, 2, 2]);
    }
}
