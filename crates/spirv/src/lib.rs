//! SPIR-V front-end and the OpenCL-like kernel pipeline.
//!
//! The paper adds a front-end for "a subset of real SPIR-V assembly" to
//! Dartagnan and feeds it kernels compiled from OpenCL by CLSPV. This
//! crate rebuilds that pipeline:
//!
//! * [`Kernel`] — a small structured kernel language (the stand-in for
//!   the OpenCL sources of the GPUVerify suite, see DESIGN.md
//!   substitution #3);
//! * [`emit_spirv`] — lowers a kernel to disassembled SPIR-V text in the
//!   style of `spirv-dis` output (the CLSPV substitute): SSA ids,
//!   `OpVariable Function` locals, scoped atomics with memory-semantics
//!   masks, `OpControlBarrier`/`OpMemoryBarrier`, structured branches;
//! * [`parse_spirv`] — parses that subset back into a [`Module`];
//! * [`lower`] — instantiates a module for a concrete thread grid,
//!   producing a `gpumc_ir::Program` ready for verification (the
//!   built-in `GlobalInvocationId`/`LocalInvocationId`/`WorkgroupId`
//!   become per-thread constants).
//!
//! # Example
//!
//! ```
//! use gpumc_spirv::{emit_spirv, lower, parse_spirv, Grid, Kernel, KExpr, Stmt};
//!
//! // Each thread writes its own slot: race-free.
//! let mut k = Kernel::new("disjoint_writes");
//! let buf = k.buffer("out", 8);
//! k.push(Stmt::store(buf, KExpr::Gid, KExpr::Const(1)));
//! let text = emit_spirv(&k);
//! let module = parse_spirv(&text).expect("round-trips");
//! let program = lower(&module, Grid { local: 2, groups: 2 }).expect("lowers");
//! assert_eq!(program.threads.len(), 4);
//! ```

pub mod corpus;
mod dsl;
mod emit;
mod lower;
mod parse;

pub use corpus::{gpuverify_corpus, Bucket, KernelCase};
pub use dsl::{CmpKind, Grid, KExpr, Kernel, Stmt};
pub use emit::emit_spirv;
pub use lower::{lower, LowerError};
pub use parse::{parse_spirv, Module, SpirvError};
