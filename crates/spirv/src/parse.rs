//! Parser for the disassembled SPIR-V subset.

use std::collections::HashMap;

/// A parsed SPIR-V instruction (operands are raw tokens).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpvInstr {
    /// Result id (`%x = ...`), without the `%`.
    pub result: Option<String>,
    /// Opcode, e.g. `OpLoad`.
    pub opcode: String,
    /// Operand tokens (ids keep their `%`).
    pub operands: Vec<String>,
}

/// A parsed SPIR-V module (the subset gpumc supports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Entry-point name.
    pub name: String,
    /// Buffers: (id like `buf0`, display name, element count).
    pub buffers: Vec<(String, String, u32)>,
    /// Integer constants by id.
    pub constants: HashMap<String, u64>,
    /// Function-body instructions in order (from `%main` on).
    pub body: Vec<SpvInstr>,
    /// Ids of `Function`-storage local variables, in declaration order.
    pub locals: Vec<String>,
}

/// A SPIR-V parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpirvError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for SpirvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpirvError {}

/// Parses disassembled SPIR-V text (the subset produced by
/// [`crate::emit_spirv`], which mirrors `spirv-dis` output).
///
/// # Errors
///
/// Returns a [`SpirvError`] for malformed lines or missing sections.
pub fn parse_spirv(text: &str) -> Result<Module, SpirvError> {
    let mut module = Module {
        name: String::new(),
        buffers: Vec::new(),
        constants: HashMap::new(),
        body: Vec::new(),
        locals: Vec::new(),
    };
    let mut buffer_meta: HashMap<String, (String, u32)> = HashMap::new();
    let mut in_function = false;
    for (ln, raw) in text.lines().enumerate() {
        let n = ln + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            // Buffer metadata comments carry names and sizes.
            let c = comment.trim();
            if let Some(rest) = c.strip_prefix("buffer ") {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() >= 3 {
                    let id = toks[0].trim_start_matches('%').to_string();
                    let name = toks[1].trim_matches('"').to_string();
                    let size: u32 = toks[2]
                        .strip_prefix("size=")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| SpirvError {
                            line: n,
                            message: "bad buffer size annotation".into(),
                        })?;
                    buffer_meta.insert(id, (name, size));
                }
            }
            continue;
        }
        let instr = parse_line(line, n)?;
        match instr.opcode.as_str() {
            "OpEntryPoint" => {
                module.name = instr
                    .operands
                    .iter()
                    .find(|o| o.starts_with('"'))
                    .map(|o| o.trim_matches('"').to_string())
                    .unwrap_or_default();
            }
            "OpConstant" => {
                if let (Some(r), Some(v)) = (
                    &instr.result,
                    instr.operands.get(1).and_then(|v| v.parse::<u64>().ok()),
                ) {
                    module.constants.insert(r.clone(), v);
                }
            }
            "OpVariable" => {
                let storage = instr.operands.get(1).map(String::as_str);
                match storage {
                    Some("StorageBuffer") => {
                        if let Some(r) = &instr.result {
                            let (name, size) = buffer_meta
                                .get(r)
                                .cloned()
                                .unwrap_or_else(|| (r.clone(), 1));
                            module.buffers.push((r.clone(), name, size));
                        }
                    }
                    Some("Function") => {
                        if let Some(r) = &instr.result {
                            module.locals.push(r.clone());
                        }
                    }
                    _ => {}
                }
            }
            "OpFunction" => in_function = true,
            "OpFunctionEnd" => in_function = false,
            "OpCapability" | "OpMemoryModel" | "OpDecorate" | "OpTypeInt" | "OpTypeBool"
            | "OpTypePointer" => {}
            _ if in_function => module.body.push(instr),
            other => {
                return Err(SpirvError {
                    line: n,
                    message: format!("unsupported instruction outside function: {other}"),
                })
            }
        }
    }
    if module.name.is_empty() {
        return Err(SpirvError {
            line: 0,
            message: "missing OpEntryPoint".into(),
        });
    }
    Ok(module)
}

fn parse_line(line: &str, n: usize) -> Result<SpvInstr, SpirvError> {
    let (result, rest) = match line.split_once('=') {
        Some((lhs, rhs)) if lhs.trim_start().starts_with('%') => (
            Some(lhs.trim().trim_start_matches('%').to_string()),
            rhs.trim(),
        ),
        _ => (None, line),
    };
    // Tokenize, keeping quoted strings whole.
    let mut toks: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in rest.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_str => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    let Some(opcode) = toks.first().cloned() else {
        return Err(SpirvError {
            line: n,
            message: "empty instruction".into(),
        });
    };
    if !opcode.starts_with("Op") {
        return Err(SpirvError {
            line: n,
            message: format!("expected an opcode, found `{opcode}`"),
        });
    }
    Ok(SpvInstr {
        result,
        opcode,
        operands: toks[1..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{KExpr, Kernel, Stmt};
    use crate::emit::emit_spirv;

    #[test]
    fn round_trips_emitted_module() {
        let mut k = Kernel::new("rt");
        let b = k.buffer("data", 8);
        let l = k.local();
        k.push(Stmt::load(l, b, KExpr::Gid));
        k.push(Stmt::store(b, KExpr::Gid, KExpr::Local(l)));
        let m = parse_spirv(&emit_spirv(&k)).unwrap();
        assert_eq!(m.name, "rt");
        assert_eq!(m.buffers, vec![("buf0".into(), "data".into(), 8)]);
        assert_eq!(m.locals, vec!["l0".to_string()]);
        assert!(m.body.iter().any(|i| i.opcode == "OpAccessChain"));
    }

    #[test]
    fn parses_constants() {
        let m = parse_spirv(
            "OpEntryPoint GLCompute %main \"k\"\n%uint_7 = OpConstant %uint 7\n%main = OpFunction\nOpReturn\nOpFunctionEnd",
        )
        .unwrap();
        assert_eq!(m.constants.get("uint_7"), Some(&7));
    }

    #[test]
    fn rejects_missing_entry_point() {
        assert!(parse_spirv("%uint = OpTypeInt 32 0").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_spirv("this is not spirv").is_err());
    }
}
