//! Base environments: the tags and relations a `.cat` model may reference.

/// Whether a name denotes a set of events or a relation over events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// A set of events (an event tag).
    Set,
    /// A binary relation over events.
    Rel,
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Kind::Set => "set",
            Kind::Rel => "relation",
        })
    }
}

/// The base sets and relations available to a model.
///
/// [`BaseEnv::builtin`] provides the standard herd environment extended
/// with the GPU features of the paper's Tables 1 and 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseEnv {
    sets: Vec<&'static str>,
    rels: Vec<&'static str>,
}

/// Base event tags: the herd basics plus Table 2 of the paper.
pub const BUILTIN_SETS: &[&str] = &[
    // Core event classes.
    "M",
    "W",
    "R",
    "F",
    "B",
    "CBAR",
    "I",
    "IW",
    "RMW",
    // Memory orders / atomicity.
    "A",
    "ACQ",
    "REL",
    "SC",
    "RLX",
    // Vulkan privacy.
    "NONPRIV",
    // Instruction scope tags: Vulkan then PTX.
    "SG",
    "WG",
    "QF",
    "DV",
    "CTA",
    "GPU",
    "SYS",
    // PTX proxies and the alias proxy fence.
    "GEN",
    "SUR",
    "TEX",
    "CON",
    "ALIAS",
    // Vulkan storage classes and storage-class semantics.
    "SC0",
    "SC1",
    "SEMSC0",
    "SEMSC1",
    // Vulkan availability / visibility.
    "AV",
    "VIS",
    "SEMAV",
    "SEMVIS",
    "AVDEVICE",
    "VISDEVICE",
];

/// Base relations: the herd basics plus Table 1 of the paper.
pub const BUILTIN_RELS: &[&str] = &[
    "po",
    "rf",
    "co",
    "loc",
    "ext",
    "int",
    "rmw",
    "addr",
    "data",
    "ctrl",
    // Table 1 (GPU extensions).
    "vloc",
    "sr",
    "scta",
    "ssg",
    "swg",
    "sqf",
    "ssw",
    "syncbar",
    "sync_barrier",
    "sync_fence",
];

impl BaseEnv {
    /// The standard GPU environment (Tables 1 and 2).
    pub fn builtin() -> BaseEnv {
        BaseEnv {
            sets: BUILTIN_SETS.to_vec(),
            rels: BUILTIN_RELS.to_vec(),
        }
    }

    /// An empty environment (useful for tests).
    pub fn empty() -> BaseEnv {
        BaseEnv {
            sets: Vec::new(),
            rels: Vec::new(),
        }
    }

    /// Adds a base set name.
    pub fn add_set(&mut self, name: &'static str) -> &mut Self {
        self.sets.push(name);
        self
    }

    /// Adds a base relation name.
    pub fn add_rel(&mut self, name: &'static str) -> &mut Self {
        self.rels.push(name);
        self
    }

    /// Looks up the kind of a base name.
    pub fn kind_of(&self, name: &str) -> Option<Kind> {
        if self.sets.contains(&name) {
            Some(Kind::Set)
        } else if self.rels.contains(&name) {
            Some(Kind::Rel)
        } else {
            None
        }
    }

    /// All base set names.
    pub fn sets(&self) -> &[&'static str] {
        &self.sets
    }

    /// All base relation names.
    pub fn rels(&self) -> &[&'static str] {
        &self.rels
    }
}

impl Default for BaseEnv {
    fn default() -> Self {
        BaseEnv::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contains_gpu_extensions() {
        let env = BaseEnv::builtin();
        for s in ["GEN", "SUR", "TEX", "CON", "SEMSC0", "AVDEVICE"] {
            assert_eq!(env.kind_of(s), Some(Kind::Set), "{s}");
        }
        for r in ["vloc", "sr", "scta", "ssw", "sync_fence", "syncbar"] {
            assert_eq!(env.kind_of(r), Some(Kind::Rel), "{r}");
        }
        assert_eq!(env.kind_of("nonsense"), None);
    }

    #[test]
    fn custom_env() {
        let mut env = BaseEnv::empty();
        env.add_set("FOO").add_rel("bar");
        assert_eq!(env.kind_of("FOO"), Some(Kind::Set));
        assert_eq!(env.kind_of("bar"), Some(Kind::Rel));
    }
}
