//! Resolved (kind-checked) consistency models.

pub use crate::ast::AxiomKind;

/// Index of a `let` definition within a [`CatModel`].
pub type DefId = usize;

/// A resolved set-valued expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetExpr {
    /// A base event tag, interpreted by the consumer (e.g. `W`, `SEMSC0`).
    Base(String),
    /// Reference to a set-kinded definition.
    Ref(DefId),
    /// The universe of events (`_`).
    Universe,
    /// Set union.
    Union(Box<SetExpr>, Box<SetExpr>),
    /// Set intersection.
    Inter(Box<SetExpr>, Box<SetExpr>),
    /// Set difference.
    Diff(Box<SetExpr>, Box<SetExpr>),
    /// The domain of a relation.
    Domain(Box<RelExpr>),
    /// The range of a relation.
    Range(Box<RelExpr>),
}

/// A resolved relation-valued expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelExpr {
    /// A base relation, interpreted by the consumer (e.g. `po`, `vloc`).
    Base(String),
    /// Reference to a relation-kinded definition.
    Ref(DefId),
    /// The full identity relation (`id`).
    Id,
    /// Identity restricted to a set (`[S]`).
    IdSet(SetExpr),
    /// Cartesian product of two sets (`S1 * S2`).
    Cross(SetExpr, SetExpr),
    /// Relation union.
    Union(Box<RelExpr>, Box<RelExpr>),
    /// Relation intersection.
    Inter(Box<RelExpr>, Box<RelExpr>),
    /// Relation difference.
    Diff(Box<RelExpr>, Box<RelExpr>),
    /// Relation composition (`r1; r2`).
    Seq(Box<RelExpr>, Box<RelExpr>),
    /// Relation inverse (`r^-1`).
    Inverse(Box<RelExpr>),
    /// Transitive closure (`r+`).
    Plus(Box<RelExpr>),
    /// Reflexive-transitive closure (`r*`).
    Star(Box<RelExpr>),
    /// Reflexive closure (`r?` = `r | id`).
    Opt(Box<RelExpr>),
}

/// The body of a definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefBody {
    /// A set-kinded definition.
    Set(SetExpr),
    /// A relation-kinded definition.
    Rel(RelExpr),
}

/// A resolved `let` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Def {
    /// The bound name (for diagnostics; lookups use [`DefId`]s).
    pub name: String,
    /// The body.
    pub body: DefBody,
    /// Identifier of the `let rec` group this definition belongs to, if
    /// any. Definitions in the same group may reference each other (and
    /// themselves) and are evaluated as a least fixpoint.
    pub rec_group: Option<usize>,
}

/// A resolved axiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axiom {
    /// Constraint kind.
    pub kind: AxiomKind,
    /// `flag` axioms report detections (e.g. data races) instead of
    /// filtering behaviours.
    pub flagged: bool,
    /// `~` negates the condition (`flag ~empty dr` detects non-emptiness).
    pub negated: bool,
    /// The constrained relation.
    pub expr: RelExpr,
    /// Optional label from `as name`.
    pub name: Option<String>,
}

impl Axiom {
    /// A human-readable label for the axiom.
    pub fn label(&self, index: usize) -> String {
        self.name
            .clone()
            .unwrap_or_else(|| format!("axiom-{index}-{}", self.kind))
    }
}

/// A fully resolved consistency model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatModel {
    name: String,
    defs: Vec<Def>,
    axioms: Vec<Axiom>,
}

impl CatModel {
    pub(crate) fn new(name: String, defs: Vec<Def>, axioms: Vec<Axiom>) -> CatModel {
        CatModel { name, defs, axioms }
    }

    /// The model title (empty string if the source had none).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All definitions, in dependency order (a definition only references
    /// earlier definitions, or same-group definitions when recursive).
    pub fn defs(&self) -> &[Def] {
        &self.defs
    }

    /// A definition by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn def(&self, id: DefId) -> &Def {
        &self.defs[id]
    }

    /// All axioms in source order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// The non-flagged axioms (those that define consistency).
    pub fn consistency_axioms(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| !a.flagged)
    }

    /// The flagged axioms (detectors such as data races).
    pub fn flagged_axioms(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(|a| a.flagged)
    }

    /// Looks up a definition id by name (the last binding wins, matching
    /// cat shadowing).
    pub fn def_id(&self, name: &str) -> Option<DefId> {
        self.defs.iter().rposition(|d| d.name == name)
    }

    /// Base relation names referenced anywhere in the model.
    pub fn referenced_base_rels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for d in &self.defs {
            match &d.body {
                DefBody::Set(s) => collect_set(s, &mut out),
                DefBody::Rel(r) => collect_rel(r, &mut out),
            }
        }
        for a in &self.axioms {
            collect_rel(&a.expr, &mut out);
        }
        out.sort();
        out.dedup();
        out
    }
}

fn collect_set(s: &SetExpr, out: &mut Vec<String>) {
    match s {
        SetExpr::Base(_) | SetExpr::Ref(_) | SetExpr::Universe => {}
        SetExpr::Union(a, b) | SetExpr::Inter(a, b) | SetExpr::Diff(a, b) => {
            collect_set(a, out);
            collect_set(b, out);
        }
        SetExpr::Domain(r) | SetExpr::Range(r) => collect_rel(r, out),
    }
}

fn collect_rel(r: &RelExpr, out: &mut Vec<String>) {
    match r {
        RelExpr::Base(n) => out.push(n.clone()),
        RelExpr::Ref(_) | RelExpr::Id => {}
        RelExpr::IdSet(s) => collect_set(s, out),
        RelExpr::Cross(a, b) => {
            collect_set(a, out);
            collect_set(b, out);
        }
        RelExpr::Union(a, b) | RelExpr::Inter(a, b) | RelExpr::Diff(a, b) | RelExpr::Seq(a, b) => {
            collect_rel(a, out);
            collect_rel(b, out);
        }
        RelExpr::Inverse(a) | RelExpr::Plus(a) | RelExpr::Star(a) | RelExpr::Opt(a) => {
            collect_rel(a, out)
        }
    }
}
