//! Lexer for the `.cat` language.

/// A lexical token of the `.cat` language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (tags, relations, definition names). Hyphens are
    /// allowed in the interior (`sc-per-location`), matching herd practice.
    Name(String),
    /// A double-quoted string (the model title).
    Str(String),
    /// `let`
    Let,
    /// `rec`
    Rec,
    /// `and`
    And,
    /// `empty`
    Empty,
    /// `irreflexive`
    Irreflexive,
    /// `acyclic`
    Acyclic,
    /// `flag`
    Flag,
    /// `as`
    As,
    /// `domain`
    Domain,
    /// `range`
    Range,
    /// `(`
    LPar,
    /// `)`
    RPar,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `|`
    Union,
    /// `&`
    Inter,
    /// `\`
    Diff,
    /// `;`
    Seq,
    /// `*` — infix cartesian product or postfix reflexive-transitive closure
    Star,
    /// `+`
    Plus,
    /// `?`
    Question,
    /// `^-1`
    Inverse,
    /// `~`
    Tilde,
    /// `=`
    Equals,
    /// `_`
    Underscore,
}

/// A lexical error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_name_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Tokenizes `.cat` source text.
///
/// Supports `(* ... *)` block comments (nested) and `//` line comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated comments/strings or unexpected
/// characters.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '(' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment.
                let mut depth = 1;
                let start_line = line;
                i += 2;
                while depth > 0 {
                    match (chars.get(i), chars.get(i + 1)) {
                        (Some('('), Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        (Some('*'), Some(')')) => {
                            depth -= 1;
                            i += 2;
                        }
                        (Some('\n'), _) => {
                            line += 1;
                            i += 1;
                        }
                        (Some(_), _) => i += 1,
                        (None, _) => {
                            return Err(LexError {
                                line: start_line,
                                message: "unterminated block comment".into(),
                            })
                        }
                    }
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\n') | None => {
                            return Err(LexError {
                                line: start_line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '(' => {
                tokens.push(Token::LPar);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RPar);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Union);
                i += 1;
            }
            '&' => {
                tokens.push(Token::Inter);
                i += 1;
            }
            '\\' => {
                tokens.push(Token::Diff);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Seq);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            '~' => {
                tokens.push(Token::Tilde);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '^' => {
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) == Some(&'1') {
                    tokens.push(Token::Inverse);
                    i += 3;
                } else {
                    return Err(LexError {
                        line,
                        message: "expected `^-1`".into(),
                    });
                }
            }
            '_' if chars.get(i + 1).is_none_or(|&c| !is_name_continue(c)) => {
                tokens.push(Token::Underscore);
                i += 1;
            }
            c if is_name_start(c) => {
                let mut name = String::new();
                while i < chars.len() && is_name_continue(chars[i]) {
                    name.push(chars[i]);
                    i += 1;
                }
                tokens.push(match name.as_str() {
                    "let" => Token::Let,
                    "rec" => Token::Rec,
                    "and" => Token::And,
                    "empty" => Token::Empty,
                    "irreflexive" => Token::Irreflexive,
                    "acyclic" => Token::Acyclic,
                    "flag" => Token::Flag,
                    "as" => Token::As,
                    "domain" => Token::Domain,
                    "range" => Token::Range,
                    _ => Token::Name(name),
                });
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_definition() {
        let toks = lex("let fr = rf^-1; co").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Let,
                Token::Name("fr".into()),
                Token::Equals,
                Token::Name("rf".into()),
                Token::Inverse,
                Token::Seq,
                Token::Name("co".into()),
            ]
        );
    }

    #[test]
    fn lexes_comments_and_strings() {
        let toks = lex("\"PTX\" (* a (* nested *) comment *) let x = po // trailing").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("PTX".into()),
                Token::Let,
                Token::Name("x".into()),
                Token::Equals,
                Token::Name("po".into()),
            ]
        );
    }

    #[test]
    fn lexes_underscore_and_star() {
        let toks = lex("(_ * _) \\ (M * M)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LPar,
                Token::Underscore,
                Token::Star,
                Token::Underscore,
                Token::RPar,
                Token::Diff,
                Token::LPar,
                Token::Name("M".into()),
                Token::Star,
                Token::Name("M".into()),
                Token::RPar,
            ]
        );
    }

    #[test]
    fn hyphenated_names() {
        let toks = lex("acyclic hb as sc-per-location").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Acyclic,
                Token::Name("hb".into()),
                Token::As,
                Token::Name("sc-per-location".into()),
            ]
        );
    }

    #[test]
    fn flag_tilde_empty() {
        let toks = lex("flag ~empty dr as data-race").unwrap();
        assert_eq!(toks[0], Token::Flag);
        assert_eq!(toks[1], Token::Tilde);
        assert_eq!(toks[2], Token::Empty);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_lone_caret() {
        assert!(lex("rf ^ 2").is_err());
    }

    #[test]
    fn underscore_prefixed_name_is_a_name() {
        let toks = lex("_foo").unwrap();
        assert_eq!(toks, vec![Token::Name("_foo".into())]);
    }
}
