//! Raw (unresolved) abstract syntax for `.cat` models.

/// An unresolved `.cat` expression over sets and relations.
///
/// `.cat` syntactically conflates sets and relations; the resolver infers
/// which is which (see [`crate::Kind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A base tag/relation or a `let`-bound name.
    Name(String),
    /// The universe of events, written `_`.
    Universe,
    /// The identity relation, written `id` (recognized by the resolver).
    /// Parsed as `Name("id")`; listed here for documentation only.
    #[doc(hidden)]
    Never,
    /// `e1 | e2`
    Union(Box<Expr>, Box<Expr>),
    /// `e1 & e2`
    Inter(Box<Expr>, Box<Expr>),
    /// `e1 \ e2`
    Diff(Box<Expr>, Box<Expr>),
    /// `r1 ; r2` (relation composition)
    Seq(Box<Expr>, Box<Expr>),
    /// `s1 * s2` (cartesian product of sets)
    Cross(Box<Expr>, Box<Expr>),
    /// `[s]` (identity relation restricted to a set)
    Bracket(Box<Expr>),
    /// `r^-1`
    Inverse(Box<Expr>),
    /// `r+`
    Plus(Box<Expr>),
    /// `r*` (postfix)
    Star(Box<Expr>),
    /// `r?`
    Opt(Box<Expr>),
    /// `domain(r)` — the set of events related to something by `r`.
    Domain(Box<Expr>),
    /// `range(r)` — the set of events something relates to by `r`.
    Range(Box<Expr>),
}

/// The kind of constraint an axiom places on its expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxiomKind {
    /// `empty r` — the relation must contain no pairs.
    Empty,
    /// `irreflexive r` — the relation must contain no pair `(e, e)`.
    Irreflexive,
    /// `acyclic r` — the relation must contain no cycle.
    Acyclic,
}

impl std::fmt::Display for AxiomKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AxiomKind::Empty => "empty",
            AxiomKind::Irreflexive => "irreflexive",
            AxiomKind::Acyclic => "acyclic",
        };
        f.write_str(s)
    }
}

/// An unresolved axiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAxiom {
    /// Constraint kind.
    pub kind: AxiomKind,
    /// Whether the condition is negated (`~empty`). Only meaningful with
    /// [`AxiomKind::Empty`] in practice (`flag ~empty dr`).
    pub negated: bool,
    /// Whether the axiom is a `flag` (a detector such as a data race,
    /// reported rather than used to filter behaviours).
    pub flagged: bool,
    /// The constrained expression.
    pub expr: Expr,
    /// Optional `as name` label.
    pub name: Option<String>,
}

/// An unresolved `let` definition (one binding of a possibly-mutual group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDef {
    /// Bound name.
    pub name: String,
    /// Body expression.
    pub body: Expr,
}

/// A `let` group: either a single binding or a `let rec ... and ...` chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawLet {
    /// Whether the group is (mutually) recursive.
    pub recursive: bool,
    /// The bindings.
    pub defs: Vec<RawDef>,
}

/// A statement of a raw model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawStatement {
    /// A `let` group.
    Let(RawLet),
    /// An axiom.
    Axiom(RawAxiom),
}

/// A parsed but unresolved `.cat` model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawModel {
    /// The model title (leading string literal), if any.
    pub name: Option<String>,
    /// Statements in source order.
    pub statements: Vec<RawStatement>,
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Name(n) => f.write_str(n),
            Expr::Universe => f.write_str("_"),
            Expr::Never => f.write_str("<never>"),
            Expr::Union(a, b) => write!(f, "({a} | {b})"),
            Expr::Inter(a, b) => write!(f, "({a} & {b})"),
            Expr::Diff(a, b) => write!(f, "({a} \\ {b})"),
            Expr::Seq(a, b) => write!(f, "({a}; {b})"),
            Expr::Cross(a, b) => write!(f, "({a} * {b})"),
            Expr::Bracket(a) => write!(f, "[{a}]"),
            Expr::Inverse(a) => write!(f, "{a}^-1"),
            Expr::Plus(a) => write!(f, "{a}+"),
            Expr::Star(a) => write!(f, "{a}*"),
            Expr::Opt(a) => write!(f, "{a}?"),
            Expr::Domain(a) => write!(f, "domain({a})"),
            Expr::Range(a) => write!(f, "range({a})"),
        }
    }
}
