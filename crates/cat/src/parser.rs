//! Recursive-descent parser for `.cat` token streams.
//!
//! Operator precedence, weakest binding first:
//!
//! 1. `|` (union)
//! 2. `;` (composition)
//! 3. `\` (difference)
//! 4. `&` (intersection)
//! 5. infix `*` (cartesian product of sets)
//! 6. postfix `+`, `*`, `?`, `^-1`
//! 7. primaries: names, `_`, `[e]`, `(e)`, `domain(e)`, `range(e)`
//!
//! The token `*` is postfix when not followed by the start of an
//! expression (so `r*; s` is a closure while `A * B` is a product).

use crate::ast::{AxiomKind, Expr, RawAxiom, RawDef, RawLet, RawModel, RawStatement};
use crate::lexer::Token;

/// A syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token in the stream.
    pub position: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Parses a token stream into a raw model.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse_tokens(tokens: &[Token]) -> Result<RawModel, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    p.model()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Token::Name(n)) => {
                self.pos += 1;
                Ok(n)
            }
            other => Err(self.error(format!("expected a name, found {other:?}"))),
        }
    }

    fn model(&mut self) -> Result<RawModel, ParseError> {
        let mut model = RawModel::default();
        if let Some(Token::Str(s)) = self.peek() {
            model.name = Some(s.clone());
            self.pos += 1;
        }
        while let Some(tok) = self.peek() {
            match tok {
                Token::Let => {
                    let group = self.let_group()?;
                    model.statements.push(RawStatement::Let(group));
                }
                Token::Empty | Token::Irreflexive | Token::Acyclic | Token::Flag | Token::Tilde => {
                    let axiom = self.axiom()?;
                    model.statements.push(RawStatement::Axiom(axiom));
                }
                other => {
                    return Err(self.error(format!("expected `let` or an axiom, found {other:?}")))
                }
            }
        }
        Ok(model)
    }

    fn let_group(&mut self) -> Result<RawLet, ParseError> {
        self.expect(&Token::Let, "`let`")?;
        let recursive = if self.peek() == Some(&Token::Rec) {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut defs = vec![self.binding()?];
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            defs.push(self.binding()?);
        }
        Ok(RawLet { recursive, defs })
    }

    fn binding(&mut self) -> Result<RawDef, ParseError> {
        let name = self.name()?;
        self.expect(&Token::Equals, "`=`")?;
        let body = self.expr()?;
        Ok(RawDef { name, body })
    }

    fn axiom(&mut self) -> Result<RawAxiom, ParseError> {
        let flagged = if self.peek() == Some(&Token::Flag) {
            self.pos += 1;
            true
        } else {
            false
        };
        let negated = if self.peek() == Some(&Token::Tilde) {
            self.pos += 1;
            true
        } else {
            false
        };
        let kind = match self.bump().cloned() {
            Some(Token::Empty) => AxiomKind::Empty,
            Some(Token::Irreflexive) => AxiomKind::Irreflexive,
            Some(Token::Acyclic) => AxiomKind::Acyclic,
            other => return Err(self.error(format!("expected an axiom keyword, found {other:?}"))),
        };
        let expr = self.expr()?;
        let name = if self.peek() == Some(&Token::As) {
            self.pos += 1;
            Some(self.name()?)
        } else {
            None
        };
        Ok(RawAxiom {
            kind,
            negated,
            flagged,
            expr,
            name,
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.seq_expr()?;
        while self.peek() == Some(&Token::Union) {
            self.pos += 1;
            let rhs = self.seq_expr()?;
            lhs = Expr::Union(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn seq_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.diff_expr()?;
        while self.peek() == Some(&Token::Seq) {
            self.pos += 1;
            let rhs = self.diff_expr()?;
            lhs = Expr::Seq(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn diff_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.inter_expr()?;
        while self.peek() == Some(&Token::Diff) {
            self.pos += 1;
            let rhs = self.inter_expr()?;
            lhs = Expr::Diff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn inter_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cross_expr()?;
        while self.peek() == Some(&Token::Inter) {
            self.pos += 1;
            let rhs = self.cross_expr()?;
            lhs = Expr::Inter(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// True when the current token can begin a primary expression.
    fn at_expr_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Name(_)
                    | Token::Underscore
                    | Token::LPar
                    | Token::LBracket
                    | Token::Domain
                    | Token::Range
            )
        )
    }

    fn cross_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.postfix_expr()?;
        // Infix `*` only when an expression follows; otherwise the `*` was
        // consumed by postfix_expr as a closure.
        while self.peek() == Some(&Token::Star) {
            // Look ahead past the star.
            let save = self.pos;
            self.pos += 1;
            if self.at_expr_start() {
                let rhs = self.postfix_expr()?;
                lhs = Expr::Cross(Box::new(lhs), Box::new(rhs));
            } else {
                self.pos = save;
                break;
            }
        }
        Ok(lhs)
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    e = Expr::Plus(Box::new(e));
                }
                Some(Token::Question) => {
                    self.pos += 1;
                    e = Expr::Opt(Box::new(e));
                }
                Some(Token::Inverse) => {
                    self.pos += 1;
                    e = Expr::Inverse(Box::new(e));
                }
                Some(Token::Star) => {
                    // Postfix closure only when no expression follows;
                    // otherwise leave the `*` for cross_expr.
                    if self.peek2().is_none_or(|t| {
                        !matches!(
                            t,
                            Token::Name(_)
                                | Token::Underscore
                                | Token::LPar
                                | Token::LBracket
                                | Token::Domain
                                | Token::Range
                        )
                    }) {
                        self.pos += 1;
                        e = Expr::Star(Box::new(e));
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Name(n)) => {
                self.pos += 1;
                Ok(Expr::Name(n))
            }
            Some(Token::Underscore) => {
                self.pos += 1;
                Ok(Expr::Universe)
            }
            Some(Token::LPar) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RPar, "`)`")?;
                Ok(e)
            }
            Some(Token::LBracket) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RBracket, "`]`")?;
                Ok(Expr::Bracket(Box::new(e)))
            }
            Some(Token::Domain) => {
                self.pos += 1;
                self.expect(&Token::LPar, "`(`")?;
                let e = self.expr()?;
                self.expect(&Token::RPar, "`)`")?;
                Ok(Expr::Domain(Box::new(e)))
            }
            Some(Token::Range) => {
                self.pos += 1;
                self.expect(&Token::LPar, "`(`")?;
                let e = self.expr()?;
                self.expect(&Token::RPar, "`)`")?;
                Ok(Expr::Range(Box::new(e)))
            }
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> RawModel {
        parse_tokens(&lex(src).unwrap()).unwrap()
    }

    fn first_def(model: &RawModel) -> &RawDef {
        match &model.statements[0] {
            RawStatement::Let(l) => &l.defs[0],
            _ => panic!("expected let"),
        }
    }

    #[test]
    fn parses_title_and_definition() {
        let m = parse("\"Vulkan\" let fr = rf^-1; co");
        assert_eq!(m.name.as_deref(), Some("Vulkan"));
        assert_eq!(first_def(&m).name, "fr");
        assert_eq!(first_def(&m).body.to_string(), "(rf^-1; co)");
    }

    #[test]
    fn precedence_union_weakest() {
        let m = parse("let x = a | b; c & d");
        assert_eq!(first_def(&m).body.to_string(), "(a | (b; (c & d)))");
    }

    #[test]
    fn difference_binds_tighter_than_seq() {
        let m = parse("let x = a; b \\ c");
        assert_eq!(first_def(&m).body.to_string(), "(a; (b \\ c))");
    }

    #[test]
    fn cross_vs_closure_disambiguation() {
        let m = parse("let x = A * B");
        assert_eq!(first_def(&m).body.to_string(), "(A * B)");
        let m = parse("let x = r*; s");
        assert_eq!(first_def(&m).body.to_string(), "(r*; s)");
        let m = parse("let x = (r; s)*");
        assert_eq!(first_def(&m).body.to_string(), "(r; s)*");
    }

    #[test]
    fn bracket_and_opt() {
        let m = parse("let sw = [REL]; po?; [ACQ]");
        assert_eq!(first_def(&m).body.to_string(), "(([REL]; po?); [ACQ])");
    }

    #[test]
    fn universe_cross() {
        let m = parse("let ms3 = ((M * M) & vloc) | ((_ * _) \\ (M * M))");
        assert_eq!(
            first_def(&m).body.to_string(),
            "(((M * M) & vloc) | ((_ * _) \\ (M * M)))"
        );
    }

    #[test]
    fn let_rec_and_chain() {
        let m = parse("let rec a = b and b = a");
        match &m.statements[0] {
            RawStatement::Let(l) => {
                assert!(l.recursive);
                assert_eq!(l.defs.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn axioms_with_names_and_flags() {
        let m = parse(
            "acyclic po | rf as no-thin-air\n irreflexive fr \n empty x \n flag ~empty dr as race",
        );
        let kinds: Vec<_> = m
            .statements
            .iter()
            .map(|s| match s {
                RawStatement::Axiom(a) => (a.kind, a.flagged, a.negated, a.name.clone()),
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            kinds[0],
            (AxiomKind::Acyclic, false, false, Some("no-thin-air".into()))
        );
        assert_eq!(kinds[1], (AxiomKind::Irreflexive, false, false, None));
        assert_eq!(kinds[2], (AxiomKind::Empty, false, false, None));
        assert_eq!(
            kinds[3],
            (AxiomKind::Empty, true, true, Some("race".into()))
        );
    }

    #[test]
    fn rejects_missing_equals() {
        let toks = lex("let x po").unwrap();
        assert!(parse_tokens(&toks).is_err());
    }

    #[test]
    fn rejects_dangling_operator() {
        let toks = lex("let x = po |").unwrap();
        assert!(parse_tokens(&toks).is_err());
    }

    #[test]
    fn domain_range_primaries() {
        let m = parse("let ws = domain(rf) | range(co)");
        assert_eq!(first_def(&m).body.to_string(), "(domain(rf) | range(co))");
    }

    #[test]
    fn deep_nesting_from_paper_figure4() {
        // Line 16-27 shape of Figure 4.
        let m = parse(
            "let proxyPreservedCauBase = ([GEN]; (vloc & cauBase); [GEN]) \
             | ([M]; (sameProx & scta & vloc & cauBase); [M]) \
             | vloc & (cauBase & (pxyFM^-1); cauBase; [GEN])",
        );
        assert_eq!(first_def(&m).name, "proxyPreservedCauBase");
    }
}
