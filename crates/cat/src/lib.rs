//! The `.cat` consistency-model language, extended with GPU features.
//!
//! A consistency model is defined in `.cat` via memory-event *tags* (sets),
//! *relations* over memory events, and *axioms* (emptiness, irreflexivity,
//! acyclicity) over those relations — see Figure 2 of the paper. This crate
//! implements:
//!
//! * a lexer and parser for the `.cat` grammar, including the GPU-specific
//!   base relations of Table 1 (`vloc`, `sr`, `scta`, `ssg`, `swg`, `sqf`,
//!   `ssw`, `syncbar`, `sync_barrier`, `sync_fence`, partial `co`) and the
//!   event tags of Table 2 (proxies, storage classes, availability and
//!   visibility flags, scopes);
//! * name resolution with set-vs-relation kind inference and cat's
//!   shadowing semantics (`let co = co+` redefines `co` in terms of the
//!   base relation);
//! * a compiled representation ([`CatModel`]) that downstream crates
//!   interpret concretely (the enumeration engine) or encode symbolically
//!   (the SAT engine).
//!
//! # Example
//!
//! ```
//! let src = r#"
//! "SC per location"
//! let fr = rf^-1; co
//! acyclic (po & loc) | rf | fr | co as sc-per-location
//! "#;
//! let model = gpumc_cat::parse(src).expect("valid model");
//! assert_eq!(model.name(), "SC per location");
//! assert_eq!(model.axioms().len(), 1);
//! ```

mod ast;
mod env;
mod lexer;
mod model;
mod parser;
mod resolve;

pub use ast::{AxiomKind, Expr, RawAxiom, RawDef, RawLet, RawModel, RawStatement};
pub use env::{BaseEnv, Kind};
pub use lexer::{LexError, Token};
pub use model::{Axiom, CatModel, Def, DefBody, DefId, RelExpr, SetExpr};
pub use parser::ParseError;
pub use resolve::ResolveError;

/// Parses and resolves a `.cat` model against the builtin GPU environment.
///
/// # Errors
///
/// Returns an error describing the first lexical, syntactic, or semantic
/// (unknown name, kind mismatch) problem found.
pub fn parse(source: &str) -> Result<CatModel, CatError> {
    parse_with_env(source, &BaseEnv::builtin())
}

/// Parses a `.cat` model to its raw (unresolved) form.
///
/// # Errors
///
/// Returns lexical or syntactic errors; names are not resolved.
pub fn parse_raw(source: &str) -> Result<RawModel, CatError> {
    let tokens = lexer::lex(source)?;
    Ok(parser::parse_tokens(&tokens)?)
}

/// Parses and resolves a `.cat` model against a custom base environment.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with_env(source: &str, env: &BaseEnv) -> Result<CatModel, CatError> {
    let tokens = lexer::lex(source)?;
    let raw = parser::parse_tokens(&tokens)?;
    let model = resolve::resolve(&raw, env)?;
    Ok(model)
}

/// Any error produced while loading a `.cat` model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Name-resolution or kind error.
    Resolve(ResolveError),
}

impl std::fmt::Display for CatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatError::Lex(e) => write!(f, "lexical error: {e}"),
            CatError::Parse(e) => write!(f, "syntax error: {e}"),
            CatError::Resolve(e) => write!(f, "resolution error: {e}"),
        }
    }
}

impl std::error::Error for CatError {}

impl From<LexError> for CatError {
    fn from(e: LexError) -> Self {
        CatError::Lex(e)
    }
}

impl From<ParseError> for CatError {
    fn from(e: ParseError) -> Self {
        CatError::Parse(e)
    }
}

impl From<ResolveError> for CatError {
    fn from(e: ResolveError) -> Self {
        CatError::Resolve(e)
    }
}
