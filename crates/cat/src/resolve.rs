//! Name resolution and kind inference for raw `.cat` models.

use std::collections::HashMap;

use crate::ast::{Expr, RawModel, RawStatement};
use crate::env::{BaseEnv, Kind};
use crate::model::{Axiom, CatModel, Def, DefBody, DefId, RelExpr, SetExpr};

/// A name-resolution or kind error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    /// Explanation of the problem.
    pub message: String,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ResolveError {}

fn err<T>(message: impl Into<String>) -> Result<T, ResolveError> {
    Err(ResolveError {
        message: message.into(),
    })
}

/// Either a set or a relation expression (resolution result).
enum Resolved {
    Set(SetExpr),
    Rel(RelExpr),
}

impl Resolved {
    fn kind(&self) -> Kind {
        match self {
            Resolved::Set(_) => Kind::Set,
            Resolved::Rel(_) => Kind::Rel,
        }
    }

    fn into_rel(self, ctx: &str) -> Result<RelExpr, ResolveError> {
        match self {
            Resolved::Rel(r) => Ok(r),
            Resolved::Set(_) => err(format!("expected a relation in {ctx}, found a set")),
        }
    }

    fn into_set(self, ctx: &str) -> Result<SetExpr, ResolveError> {
        match self {
            Resolved::Set(s) => Ok(s),
            Resolved::Rel(_) => err(format!("expected a set in {ctx}, found a relation")),
        }
    }
}

struct Resolver<'a> {
    env: &'a BaseEnv,
    /// Name → most recent DefId (cat shadowing).
    scope: HashMap<String, DefId>,
    defs: Vec<Def>,
    /// Kinds for defs; needed for refs to recursive defs whose body is not
    /// resolved yet (assumed `Rel`).
    kinds: Vec<Kind>,
}

/// Resolves a raw model against a base environment.
///
/// # Errors
///
/// Returns a [`ResolveError`] for unknown names or kind mismatches.
pub fn resolve(raw: &RawModel, env: &BaseEnv) -> Result<CatModel, ResolveError> {
    let mut r = Resolver {
        env,
        scope: HashMap::new(),
        defs: Vec::new(),
        kinds: Vec::new(),
    };
    let mut axioms = Vec::new();
    let mut rec_counter = 0usize;
    for stmt in &raw.statements {
        match stmt {
            RawStatement::Let(group) => {
                if group.recursive {
                    let group_id = rec_counter;
                    rec_counter += 1;
                    // Pre-register all names of the group as relations.
                    let first_id = r.defs.len();
                    for (i, d) in group.defs.iter().enumerate() {
                        r.defs.push(Def {
                            name: d.name.clone(),
                            body: DefBody::Rel(RelExpr::Id), // placeholder
                            rec_group: Some(group_id),
                        });
                        r.kinds.push(Kind::Rel);
                        r.scope.insert(d.name.clone(), first_id + i);
                    }
                    for (i, d) in group.defs.iter().enumerate() {
                        let body = r
                            .expr(&d.body)?
                            .into_rel(&format!("recursive definition `{}`", d.name))?;
                        r.defs[first_id + i].body = DefBody::Rel(body);
                    }
                } else {
                    // Non-recursive groups bind simultaneously: resolve all
                    // bodies first, then insert names.
                    let mut resolved = Vec::new();
                    for d in &group.defs {
                        resolved.push((d.name.clone(), r.expr(&d.body)?));
                    }
                    for (name, body) in resolved {
                        let id = r.defs.len();
                        let kind = body.kind();
                        let body = match body {
                            Resolved::Set(s) => DefBody::Set(s),
                            Resolved::Rel(rel) => DefBody::Rel(rel),
                        };
                        r.defs.push(Def {
                            name: name.clone(),
                            body,
                            rec_group: None,
                        });
                        r.kinds.push(kind);
                        r.scope.insert(name, id);
                    }
                }
            }
            RawStatement::Axiom(a) => {
                let expr = r.expr(&a.expr)?.into_rel(&format!("{} axiom", a.kind))?;
                axioms.push(Axiom {
                    kind: a.kind,
                    flagged: a.flagged,
                    negated: a.negated,
                    expr,
                    name: a.name.clone(),
                });
            }
        }
    }
    Ok(CatModel::new(
        raw.name.clone().unwrap_or_default(),
        r.defs,
        axioms,
    ))
}

impl<'a> Resolver<'a> {
    fn expr(&mut self, e: &Expr) -> Result<Resolved, ResolveError> {
        match e {
            Expr::Name(n) if n == "id" => Ok(Resolved::Rel(RelExpr::Id)),
            Expr::Name(n) => {
                if let Some(&id) = self.scope.get(n) {
                    match self.kinds[id] {
                        Kind::Set => Ok(Resolved::Set(SetExpr::Ref(id))),
                        Kind::Rel => Ok(Resolved::Rel(RelExpr::Ref(id))),
                    }
                } else {
                    match self.env.kind_of(n) {
                        Some(Kind::Set) => Ok(Resolved::Set(SetExpr::Base(n.clone()))),
                        Some(Kind::Rel) => Ok(Resolved::Rel(RelExpr::Base(n.clone()))),
                        None => err(format!("unknown name `{n}`")),
                    }
                }
            }
            Expr::Universe => Ok(Resolved::Set(SetExpr::Universe)),
            Expr::Never => err("internal: Never expression"),
            Expr::Union(a, b) => self.binop(a, b, "union", SetExpr::Union, RelExpr::Union),
            Expr::Inter(a, b) => self.binop(a, b, "intersection", SetExpr::Inter, RelExpr::Inter),
            Expr::Diff(a, b) => self.binop(a, b, "difference", SetExpr::Diff, RelExpr::Diff),
            Expr::Seq(a, b) => {
                let ra = self.expr(a)?.into_rel("composition")?;
                let rb = self.expr(b)?.into_rel("composition")?;
                Ok(Resolved::Rel(RelExpr::Seq(Box::new(ra), Box::new(rb))))
            }
            Expr::Cross(a, b) => {
                let sa = self.expr(a)?.into_set("cartesian product")?;
                let sb = self.expr(b)?.into_set("cartesian product")?;
                Ok(Resolved::Rel(RelExpr::Cross(sa, sb)))
            }
            Expr::Bracket(a) => {
                let s = self.expr(a)?.into_set("bracket `[_]`")?;
                Ok(Resolved::Rel(RelExpr::IdSet(s)))
            }
            Expr::Inverse(a) => {
                let r = self.expr(a)?.into_rel("inverse")?;
                Ok(Resolved::Rel(RelExpr::Inverse(Box::new(r))))
            }
            Expr::Plus(a) => {
                let r = self.expr(a)?.into_rel("transitive closure")?;
                Ok(Resolved::Rel(RelExpr::Plus(Box::new(r))))
            }
            Expr::Star(a) => {
                let r = self.expr(a)?.into_rel("reflexive-transitive closure")?;
                Ok(Resolved::Rel(RelExpr::Star(Box::new(r))))
            }
            Expr::Opt(a) => {
                let r = self.expr(a)?.into_rel("option `?`")?;
                Ok(Resolved::Rel(RelExpr::Opt(Box::new(r))))
            }
            Expr::Domain(a) => {
                let r = self.expr(a)?.into_rel("domain")?;
                Ok(Resolved::Set(SetExpr::Domain(Box::new(r))))
            }
            Expr::Range(a) => {
                let r = self.expr(a)?.into_rel("range")?;
                Ok(Resolved::Set(SetExpr::Range(Box::new(r))))
            }
        }
    }

    fn binop(
        &mut self,
        a: &Expr,
        b: &Expr,
        what: &str,
        mk_set: fn(Box<SetExpr>, Box<SetExpr>) -> SetExpr,
        mk_rel: fn(Box<RelExpr>, Box<RelExpr>) -> RelExpr,
    ) -> Result<Resolved, ResolveError> {
        let ra = self.expr(a)?;
        let rb = self.expr(b)?;
        match (ra, rb) {
            (Resolved::Set(x), Resolved::Set(y)) => {
                Ok(Resolved::Set(mk_set(Box::new(x), Box::new(y))))
            }
            (Resolved::Rel(x), Resolved::Rel(y)) => {
                Ok(Resolved::Rel(mk_rel(Box::new(x), Box::new(y))))
            }
            (x, y) => err(format!(
                "kind mismatch in {what}: {} vs {} (in `{a}` {what} `{b}`)",
                x.kind(),
                y.kind()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AxiomKind;
    use crate::lexer::lex;
    use crate::parser::parse_tokens;

    fn resolve_src(src: &str) -> Result<CatModel, ResolveError> {
        let raw = parse_tokens(&lex(src).unwrap()).unwrap();
        resolve(&raw, &BaseEnv::builtin())
    }

    #[test]
    fn resolves_simple_model() {
        let m = resolve_src("\"T\" let fr = rf^-1; co\nacyclic po | rf | fr | co").unwrap();
        assert_eq!(m.name(), "T");
        assert_eq!(m.defs().len(), 1);
        assert_eq!(m.axioms().len(), 1);
        assert_eq!(m.axioms()[0].kind, AxiomKind::Acyclic);
    }

    #[test]
    fn shadowing_lets_redefine_co() {
        // `let co = co+` : body refers to the base relation.
        let m = resolve_src("let co = co+\nempty co \\ co").unwrap();
        match &m.defs()[0].body {
            DefBody::Rel(RelExpr::Plus(inner)) => {
                assert_eq!(**inner, RelExpr::Base("co".into()));
            }
            other => panic!("unexpected body {other:?}"),
        }
        // The axiom's `co` references the definition, not the base.
        match &m.axioms()[0].expr {
            RelExpr::Diff(a, _) => assert_eq!(**a, RelExpr::Ref(0)),
            other => panic!("unexpected axiom {other:?}"),
        }
    }

    #[test]
    fn set_definition_and_bracket() {
        let m = resolve_src("let PRIV = (R | W) \\ NONPRIV\nempty [PRIV]; po; [PRIV]").unwrap();
        assert!(matches!(m.defs()[0].body, DefBody::Set(_)));
    }

    #[test]
    fn recursive_group() {
        let m = resolve_src("let rec a = po | (a; a) and b = a | b").unwrap();
        assert_eq!(m.defs()[0].rec_group, Some(0));
        assert_eq!(m.defs()[1].rec_group, Some(0));
    }

    #[test]
    fn unknown_name_rejected() {
        let e = resolve_src("let x = nonexistent").unwrap_err();
        assert!(e.message.contains("unknown name"));
    }

    #[test]
    fn kind_mismatch_rejected() {
        assert!(resolve_src("let x = po | W").is_err());
        assert!(resolve_src("let x = W; R").is_err());
        assert!(resolve_src("let x = [po]").is_err());
        assert!(resolve_src("let x = po * rf").is_err());
        assert!(resolve_src("empty W").is_err());
    }

    #[test]
    fn id_is_the_identity_relation() {
        let m = resolve_src("let x = po & id").unwrap();
        match &m.defs()[0].body {
            DefBody::Rel(RelExpr::Inter(_, b)) => assert_eq!(**b, RelExpr::Id),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn universe_cross_is_full_relation() {
        let m = resolve_src("let all = _ * _").unwrap();
        match &m.defs()[0].body {
            DefBody::Rel(RelExpr::Cross(SetExpr::Universe, SetExpr::Universe)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn domain_range_are_sets() {
        let m =
            resolve_src("let ws = domain(co)\nlet rs = range(rf)\nempty [ws]; po; [rs]").unwrap();
        assert!(matches!(m.defs()[0].body, DefBody::Set(_)));
        assert!(matches!(m.defs()[1].body, DefBody::Set(_)));
    }

    #[test]
    fn flagged_axiom_preserved() {
        let m = resolve_src("let dr = loc & (po \\ po)\nflag ~empty dr as race").unwrap();
        let a = &m.axioms()[0];
        assert!(a.flagged);
        assert!(a.negated);
        assert_eq!(a.name.as_deref(), Some("race"));
        assert_eq!(a.label(0), "race");
    }

    #[test]
    fn referenced_base_rels_collected() {
        let m = resolve_src("let fr = rf^-1; co\nacyclic po | fr").unwrap();
        assert_eq!(m.referenced_base_rels(), vec!["co", "po", "rf"]);
    }

    #[test]
    fn paper_figure4_fragment_resolves() {
        let src = r#"
"PTX v7.5 fragment"
let sameProx = GEN * GEN | SUR * SUR | TEX * TEX | CON * CON
let povloc = po & vloc
let strongOp = F | (M & A) | (M & RLX)
let ms1 = (po | po^-1) | ([strongOp]; sr; [strongOp])
let ms2 = sameProx
let ms3 = ((M * M) & vloc) | ((_ * _) \ (M * M))
let ms = (ms1 & ms2 & ms3) \ id
let dep = addr | data | ctrl
acyclic (rf | dep) as no-thin-air
"#;
        let m = resolve_src(src).unwrap();
        assert_eq!(m.defs().len(), 8);
        assert_eq!(m.axioms()[0].label(0), "no-thin-air");
    }
}
