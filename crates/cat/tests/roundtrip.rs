//! Property test: pretty-printed `.cat` expressions re-parse to the same
//! tree (the printer fully parenthesizes, so this exercises the parser's
//! whole operator grammar).

use gpumc_cat::{Expr, RawDef, RawModel};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("po".to_string()),
        Just("rf".to_string()),
        Just("co".to_string()),
        Just("loc".to_string()),
        Just("vloc".to_string()),
        Just("sr".to_string()),
        Just("W".to_string()),
        Just("R".to_string()),
        Just("ACQ".to_string()),
        Just("SEMSC0".to_string()),
        Just("some-name".to_string()),
        Just("x_1".to_string()),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![name_strategy().prop_map(Expr::Name), Just(Expr::Universe),];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Inter(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Seq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Cross(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Bracket(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Inverse(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Plus(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Star(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Opt(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Domain(Box::new(a))),
            inner.prop_map(|a| Expr::Range(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_expressions_reparse_identically(e in expr_strategy()) {
        let printed = format!("let z = {e}");
        let raw: RawModel = match gpumc_cat::parse_raw(&printed) {
            Ok(t) => t,
            Err(err) => return Err(TestCaseError::fail(format!("parse: {err} in `{printed}`"))),
        };
        let def: &RawDef = match &raw.statements[0] {
            gpumc_cat::RawStatement::Let(l) => &l.defs[0],
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        };
        prop_assert_eq!(&def.body, &e, "printed: {}", printed);
    }
}
