//! Properties of the consistent-hash ring (ISSUE 10 satellite): the
//! two guarantees the router's self-healing story rests on.
//!
//! * **Load balance**: with the default 128 virtual nodes, no shard
//!   owns more than 2× its ideal share of ≥1000 uniformly-hashed
//!   digests (documented bound — vnode placement is pseudo-random, so
//!   perfect balance is not expected, but a 2× skew cap keeps the
//!   worst shard's queue within one doubling of the mean).
//! * **Minimal movement**: removing a shard re-homes only the digests
//!   it owned; adding a shard steals digests only *for* the new shard.
//!   Every other digest keeps its home — and therefore its warm
//!   result cache.

use gpumc_fleet::{HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

/// splitmix64-expanded digests: uniform over the ring keyspace.
fn digests(seed: u32, n: usize) -> Vec<u128> {
    let mut x = u64::from(seed) ^ 0x5851_f42d_4c95_7f2d;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let lo = z ^ (z >> 31);
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let hi = z ^ (z >> 31);
        out.push((u128::from(hi) << 64) | u128::from(lo));
    }
    out
}

proptest! {
    /// Documented bound: max/ideal ≤ 2.0 across ≥1000 digests with the
    /// default vnode count, for fleets of 2..=8 shards.
    #[test]
    fn load_balance_within_2x_of_ideal(
        shards in 2usize..=8,
        seed in any::<u32>(),
    ) {
        let ring = HashRing::with_shards(shards, DEFAULT_VNODES);
        let sample = digests(seed, 1000);
        let mut owned = vec![0usize; shards];
        for &d in &sample {
            owned[ring.owner(d).expect("non-empty ring")] += 1;
        }
        let ideal = sample.len() as f64 / shards as f64;
        for (s, &n) in owned.iter().enumerate() {
            prop_assert!(
                (n as f64) <= 2.0 * ideal,
                "shard {s} owns {n} of {} digests (ideal {ideal:.0}, bound 2x)",
                sample.len()
            );
        }
    }

    /// Removing a shard moves exactly the digests it owned.
    #[test]
    fn removal_moves_only_the_removed_shards_digests(
        shards in 2usize..=8,
        victim in 0usize..8,
        seed in any::<u32>(),
    ) {
        let victim = victim % shards;
        let mut ring = HashRing::with_shards(shards, DEFAULT_VNODES);
        let sample = digests(seed, 1000);
        let before: Vec<usize> =
            sample.iter().map(|&d| ring.owner(d).unwrap()).collect();
        prop_assert!(ring.remove(&format!("s{victim}")));
        for (&d, &was) in sample.iter().zip(&before) {
            let now = ring.owner(d).unwrap();
            if was == victim {
                prop_assert!(now != victim, "digest {d:x} still on the removed shard");
            } else {
                prop_assert_eq!(
                    now, was,
                    "digest {:x} moved although its owner survived", d
                );
            }
        }
    }

    /// Adding a shard steals digests only for the new shard.
    #[test]
    fn addition_steals_only_for_the_new_shard(
        shards in 1usize..=7,
        seed in any::<u32>(),
    ) {
        let mut ring = HashRing::with_shards(shards, DEFAULT_VNODES);
        let sample = digests(seed, 1000);
        let before: Vec<usize> =
            sample.iter().map(|&d| ring.owner(d).unwrap()).collect();
        let new = ring.add(&format!("s{shards}"));
        let mut stolen = 0usize;
        for (&d, &was) in sample.iter().zip(&before) {
            let now = ring.owner(d).unwrap();
            prop_assert!(
                now == was || now == new,
                "digest {d:x} moved to pre-existing shard {now} (was {was})"
            );
            if now == new {
                stolen += 1;
            }
        }
        // The new shard takes a real share (at least a quarter of its
        // ideal 1/(n+1) cut) — guards against a ring that "moves
        // nothing" by never assigning to the new shard at all.
        prop_assert!(
            stolen * (shards + 1) * 4 >= sample.len(),
            "new shard took {stolen} of {} digests", sample.len()
        );
    }

    /// The successor walk is a permutation of all live shards starting
    /// at the owner — the failover order never skips or repeats.
    #[test]
    fn successors_are_a_permutation_starting_at_the_owner(
        shards in 1usize..=8,
        seed in any::<u32>(),
    ) {
        let ring = HashRing::with_shards(shards, DEFAULT_VNODES);
        for &d in &digests(seed, 50) {
            let succ = ring.successors(d);
            prop_assert_eq!(succ[0], ring.owner(d).unwrap());
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
        }
    }
}
