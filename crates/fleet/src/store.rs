//! The persistent half of the result cache: an append-only JSONL file.
//!
//! Line 1 is a header binding the file to a *fingerprint* — the
//! verifier build + digest scheme that produced the entries. Opening a
//! store whose header does not match the current fingerprint truncates
//! it (versioned invalidation): a cached verdict is only as trustworthy
//! as the pipeline that computed it, so a changed encoder, solver, or
//! digest scheme silently starting to *reuse* old verdicts would be a
//! soundness hole. Every later line is one `(digest, verdict)` entry,
//! and a re-appended digest simply wins by being later (last-wins on
//! load).
//!
//! A crash mid-append leaves a *torn tail*: trailing bytes with no
//! newline terminator. Opening such a file truncates only those bytes
//! — the valid prefix survives — so the next append starts on a clean
//! line instead of concatenating onto the fragment and corrupting the
//! next entry. Complete-but-unparsable lines are merely skipped (they
//! cannot hurt later appends); wholesale truncation stays reserved for
//! a fingerprint mismatch or a torn header.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::cache::CachedVerdict;
use crate::digest::{digest_hex, parse_digest_hex};
use crate::json::Json;

/// On-disk format version (independent of the digest scheme, which is
/// part of the fingerprint).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// File name inside a `--cache-dir`.
pub const STORE_FILE: &str = "results.jsonl";

/// What [`Store::open`] found on disk.
#[derive(Debug)]
pub struct LoadReport {
    /// Entries in file order (last-wins for duplicate digests).
    pub entries: Vec<(u128, CachedVerdict)>,
    /// The file existed but its fingerprint mismatched (or its header
    /// was torn) and it was truncated wholesale.
    pub invalidated: bool,
    /// Corrupt (but newline-complete) entry lines skipped.
    pub skipped: u64,
    /// Bytes of a torn trailing partial line truncated away (a crash
    /// mid-append); the prefix before them survived.
    pub recovered_tail_bytes: u64,
}

/// An open store: an append handle plus its path.
#[derive(Debug)]
pub struct Store {
    file: File,
    path: PathBuf,
}

impl Store {
    /// Opens (or creates) the store at `path`, validating the header
    /// against `fingerprint` and loading surviving entries.
    ///
    /// # Errors
    ///
    /// Filesystem errors only; a mismatched or corrupt header is
    /// handled by truncation, not an error.
    pub fn open(path: &Path, fingerprint: &str) -> std::io::Result<(Store, LoadReport)> {
        let mut report = LoadReport {
            entries: Vec::new(),
            invalidated: false,
            skipped: 0,
            recovered_tail_bytes: 0,
        };
        let expected_header = header_line(fingerprint);
        let mut valid = false;
        // Byte offset of the end of the last newline-terminated line;
        // anything past it is a torn tail to truncate.
        let mut valid_end = 0u64;
        if path.exists() {
            let data = std::fs::read(path)?;
            if !data.is_empty() {
                match data.iter().position(|&b| b == b'\n') {
                    Some(nl) if &data[..nl] == expected_header.as_bytes() => {
                        valid = true;
                        valid_end = (nl + 1) as u64;
                        let mut at = nl + 1;
                        while let Some(len) = data[at..].iter().position(|&b| b == b'\n') {
                            let line = &data[at..at + len];
                            match std::str::from_utf8(line).ok().and_then(parse_entry) {
                                Some((d, v)) => report.entries.push((d, v)),
                                None => report.skipped += 1,
                            }
                            at += len + 1;
                            valid_end = at as u64;
                        }
                        report.recovered_tail_bytes = (data.len() - at) as u64;
                    }
                    // A wrong fingerprint or a header torn before its
                    // newline: nothing in the file is trustworthy.
                    _ => report.invalidated = true,
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(valid)
            .write(true)
            .truncate(!valid)
            .open(path)?;
        if !valid {
            writeln!(file, "{expected_header}")?;
            file.flush()?;
        } else if report.recovered_tail_bytes > 0 {
            file.set_len(valid_end)?;
        }
        Ok((
            Store {
                file,
                path: path.to_path_buf(),
            },
            report,
        ))
    }

    /// Appends one entry and flushes it.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn append(&mut self, digest: u128, verdict: &CachedVerdict) -> std::io::Result<()> {
        writeln!(self.file, "{}", entry_json(digest, verdict))?;
        self.file.flush()
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_line(fingerprint: &str) -> String {
    Json::Obj(vec![
        (
            "gpumc_cache".into(),
            Json::count(STORE_FORMAT_VERSION.into()),
        ),
        ("fingerprint".into(), Json::str(fingerprint)),
    ])
    .to_string()
}

fn entry_json(digest: u128, v: &CachedVerdict) -> Json {
    Json::Obj(vec![
        ("d".into(), Json::Str(digest_hex(digest))),
        ("test".into(), Json::str(&v.test)),
        ("reachable".into(), Json::Bool(v.reachable)),
        ("expectation".into(), Json::str(&v.expectation)),
        ("liveness".into(), Json::str(&v.liveness)),
        ("datarace".into(), Json::str(&v.datarace)),
    ])
}

fn parse_entry(line: &str) -> Option<(u128, CachedVerdict)> {
    let j = Json::parse(line).ok()?;
    let digest = parse_digest_hex(j.get("d")?.as_str()?)?;
    Some((
        digest,
        CachedVerdict {
            test: j.get("test")?.as_str()?.to_string(),
            reachable: j.get("reachable")?.as_bool()?,
            expectation: j.get("expectation")?.as_str()?.to_string(),
            liveness: j.get("liveness")?.as_str()?.to_string(),
            datarace: j.get("datarace")?.as_str()?.to_string(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(test: &str) -> CachedVerdict {
        CachedVerdict {
            test: test.to_string(),
            reachable: true,
            expectation: "holds".to_string(),
            liveness: "ok".to_string(),
            datarace: "n/a".to_string(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpumc-fleet-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn persists_and_reloads_entries() {
        let dir = tmpdir("reload");
        let path = dir.join(STORE_FILE);
        {
            let (mut store, report) = Store::open(&path, "fp-v1").unwrap();
            assert!(report.entries.is_empty());
            assert!(!report.invalidated);
            store.append(7, &verdict("a")).unwrap();
            store.append(9, &verdict("b")).unwrap();
        }
        let (_store, report) = Store::open(&path, "fp-v1").unwrap();
        assert!(!report.invalidated);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.entries[0].0, 7);
        assert_eq!(report.entries[0].1.test, "a");
        assert_eq!(report.entries[1].0, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_truncates() {
        let dir = tmpdir("invalidate");
        let path = dir.join(STORE_FILE);
        {
            let (mut store, _) = Store::open(&path, "fp-v1").unwrap();
            store.append(7, &verdict("a")).unwrap();
        }
        // A new verifier build: cached verdicts must not survive.
        let (_store, report) = Store::open(&path, "fp-v2").unwrap();
        assert!(report.invalidated);
        assert!(report.entries.is_empty());
        // And the file now carries the new fingerprint.
        let (_store, report) = Store::open(&path, "fp-v2").unwrap();
        assert!(!report.invalidated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_prefix_survives() {
        let dir = tmpdir("torn");
        let path = dir.join(STORE_FILE);
        {
            let (mut store, _) = Store::open(&path, "fp").unwrap();
            store.append(7, &verdict("a")).unwrap();
            store.append(9, &verdict("b")).unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: a truncated trailing line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"d\":\"00000000").unwrap();
        drop(f);
        let (mut store, report) = Store::open(&path, "fp").unwrap();
        assert_eq!(report.entries.len(), 2, "the prefix survives");
        assert_eq!(report.skipped, 0);
        assert!(!report.invalidated, "a torn tail is not an invalidation");
        assert_eq!(report.recovered_tail_bytes, 14);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "only the torn bytes were truncated"
        );
        // The regression: the next append must start on a clean line,
        // not concatenate onto the fragment.
        store.append(11, &verdict("c")).unwrap();
        drop(store);
        let (_store, report) = Store::open(&path, "fp").unwrap();
        assert_eq!(report.entries.len(), 3);
        assert_eq!(report.entries[2].0, 11);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.recovered_tail_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn complete_corrupt_line_is_skipped_without_truncation() {
        let dir = tmpdir("midline");
        let path = dir.join(STORE_FILE);
        {
            let (mut store, _) = Store::open(&path, "fp").unwrap();
            store.append(7, &verdict("a")).unwrap();
        }
        // A complete (newline-terminated) garbage line, then a good one
        // after it: the good suffix must survive too.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "not json at all").unwrap();
        drop(f);
        {
            let (mut store, _) = Store::open(&path, "fp").unwrap();
            store.append(9, &verdict("b")).unwrap();
        }
        let (_store, report) = Store::open(&path, "fp").unwrap();
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.recovered_tail_bytes, 0);
        assert!(!report.invalidated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_truncates_wholesale() {
        let dir = tmpdir("tornheader");
        let path = dir.join(STORE_FILE);
        std::fs::write(&path, "{\"gpumc_cache\":1,\"finger").unwrap();
        let (_store, report) = Store::open(&path, "fp").unwrap();
        assert!(report.invalidated);
        assert!(report.entries.is_empty());
        let (_store, report) = Store::open(&path, "fp").unwrap();
        assert!(!report.invalidated, "the rewritten header is clean");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
