//! Canonical request identity: a stable, persistable digest.
//!
//! The cache key must identify *what is being verified*, not how the
//! request happened to be spelled: two requests whose JSON differs in
//! key order, whitespace, or elided default fields — or whose litmus
//! sources differ only in comments — must collapse to the same digest.
//! Canonicalization therefore hashes the *parsed* artifacts:
//!
//! ```text
//! digest = fnv1a128( scheme_version, protocol_version, engine,
//!                    property, bound, hash(model source),
//!                    hash(parsed Program) )
//! ```
//!
//! `EventGraph::fingerprint` is explicitly process-local (`DefaultHasher`
//! is randomized across std versions and must never be persisted), so
//! this module hashes with FNV-1a over a canonical text rendering
//! instead: the same request digests identically across processes,
//! machines, and restarts. Anything that changes what a digest *means*
//! — the AST `Debug` shape, the hash mixing, field order — must bump
//! [`DIGEST_SCHEME_VERSION`], which invalidates persistent stores (see
//! `store`).

use gpumc_ir::{Arch, Program};
use gpumc_models::ModelKind;

/// Version of the digest scheme. Part of every digest and of the
/// persistent-store fingerprint: bump it whenever the canonical
/// rendering or the hash mixing changes.
pub const DIGEST_SCHEME_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state`.
fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Stable hash of a parsed litmus program (the test AST).
///
/// The derived `Debug` rendering of [`Program`] is a deterministic
/// function of the AST (no maps, no addresses), which makes it a
/// canonical form: sources differing in whitespace or comments parse to
/// the same AST and hash identically.
pub fn ast_hash(program: &Program) -> u64 {
    fnv1a64(FNV_OFFSET, format!("{program:?}").as_bytes())
}

/// Stable hash of a memory-model source (`.cat` text).
pub fn model_hash(model_source: &str) -> u64 {
    fnv1a64(FNV_OFFSET, model_source.as_bytes())
}

/// Everything that makes a verification request semantically distinct.
#[derive(Debug, Clone, Copy)]
pub struct RequestKey<'a> {
    /// The parsed litmus test.
    pub program: &'a Program,
    /// The memory model, as its `.cat` source text.
    pub model_source: &'a str,
    /// Loop unrolling bound.
    pub bound: u32,
    /// The property set checked (`"all"` for `check_all`).
    pub property: &'a str,
    /// Canonical engine name (see [`canonical_engine`]).
    pub engine: &'a str,
    /// Protocol version the request was made under.
    pub proto: u32,
}

/// The 128-bit content digest of a request: two independently seeded
/// FNV-1a streams over one canonical rendering. Not cryptographic —
/// collision resistance is "birthday bound on 128 bits against
/// accidental collisions", which the corpus proptests pin down.
pub fn request_digest(key: &RequestKey<'_>) -> u128 {
    let canon = format!(
        "scheme={};proto={};engine={};property={};bound={};model={:016x};ast={:016x}",
        DIGEST_SCHEME_VERSION,
        key.proto,
        key.engine,
        key.property,
        key.bound,
        model_hash(key.model_source),
        ast_hash(key.program),
    );
    let lo = fnv1a64(FNV_OFFSET, canon.as_bytes());
    // A distinct, fixed offset basis decorrelates the high half.
    let hi = fnv1a64(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15, canon.as_bytes());
    (u128::from(hi) << 64) | u128::from(lo)
}

/// Renders a digest as the fixed-width hex used on disk and on the
/// wire.
pub fn digest_hex(d: u128) -> String {
    format!("{d:032x}")
}

/// Parses [`digest_hex`] output back.
pub fn parse_digest_hex(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Maps every accepted engine spelling to its canonical digest name.
/// `enum` and `enumerate` are the same engine and must share a digest;
/// `alloy` (the straight-line-only enumerator) is semantically distinct
/// because it rejects programs the others accept.
pub fn canonical_engine(name: &str) -> Result<&'static str, String> {
    match name {
        "sat" => Ok("sat"),
        "enumerate" | "enum" => Ok("enumerate"),
        "alloy" => Ok("alloy"),
        "dpor" => Ok("dpor"),
        other => Err(format!("unknown engine `{other}`")),
    }
}

/// The model a request resolves to: an explicit name, or the dialect's
/// default. This is the *one* place that default lives for digesting,
/// so the server and the router can never disagree on it.
pub fn resolve_model(name: Option<&str>, arch: Arch) -> Option<ModelKind> {
    match name {
        Some(n) => ModelKind::from_name(n),
        None => Some(match arch {
            Arch::Ptx => ModelKind::Ptx75,
            Arch::Vulkan => ModelKind::Vulkan,
        }),
    }
}

/// Digest a raw request as the router sees it: litmus source text plus
/// the wire-level fields. Parses and canonicalizes, so any two
/// spellings of the same request agree with the server's own digest.
///
/// # Errors
///
/// Unparsable source, unknown model, or unknown engine — the same
/// requests the server would answer `status:"error"`.
pub fn source_digest(
    source: &str,
    model: Option<&str>,
    bound: u32,
    property: &str,
    engine: &str,
    proto: u32,
) -> Result<u128, String> {
    let program = gpumc_litmus::parse(source).map_err(|e| e.to_string())?;
    let kind = resolve_model(model, program.arch)
        .ok_or_else(|| format!("unknown model `{}`", model.unwrap_or("")))?;
    let engine = canonical_engine(engine)?;
    Ok(request_digest(&RequestKey {
        program: &program,
        model_source: kind.source(),
        bound,
        property,
        engine,
        proto,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = "PTX MP\n{ x = 0; flag = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | ld.weak r0, flag ;\n\
st.weak flag, 1 | ld.weak r1, x ;\n\
exists (P1:r0 == 1 /\\ P1:r1 == 0)";

    const SB: &str = "PTX SB\n{ x = 0; y = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | st.weak y, 1 ;\n\
ld.weak r0, y | ld.weak r1, x ;\n\
exists (P0:r0 == 0 /\\ P1:r1 == 0)";

    #[test]
    fn digest_is_stable_across_reparses() {
        let a = source_digest(MP, None, 2, "all", "sat", 1).unwrap();
        let b = source_digest(MP, None, 2, "all", "sat", 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_key_component_separates() {
        let base = source_digest(MP, None, 2, "all", "sat", 1).unwrap();
        for other in [
            source_digest(SB, None, 2, "all", "sat", 1).unwrap(),
            source_digest(MP, Some("ptx-v6.0"), 2, "all", "sat", 1).unwrap(),
            source_digest(MP, None, 3, "all", "sat", 1).unwrap(),
            source_digest(MP, None, 2, "assertion", "sat", 1).unwrap(),
            source_digest(MP, None, 2, "all", "dpor", 1).unwrap(),
            source_digest(MP, None, 2, "all", "sat", 2).unwrap(),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn explicit_default_model_matches_elided() {
        // `model: "ptx-v7.5"` is the PTX default: spelling it out must
        // not change the digest.
        let elided = source_digest(MP, None, 2, "all", "sat", 1).unwrap();
        let explicit = source_digest(MP, Some("ptx-v7.5"), 2, "all", "sat", 1).unwrap();
        assert_eq!(elided, explicit);
    }

    #[test]
    fn engine_aliases_share_a_digest() {
        let a = source_digest(MP, None, 2, "all", "enum", 1).unwrap();
        let b = source_digest(MP, None, 2, "all", "enumerate", 1).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, source_digest(MP, None, 2, "all", "alloy", 1).unwrap());
    }

    #[test]
    fn source_comments_and_layout_do_not_matter() {
        // Same program, different spelling (blank line + trailing
        // whitespace the parser drops).
        let respelled = MP.replace(" | ", "  |  ");
        let a = source_digest(MP, None, 2, "all", "sat", 1).unwrap();
        let b = source_digest(&respelled, None, 2, "all", "sat", 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hex_roundtrip() {
        let d = source_digest(MP, None, 2, "all", "sat", 1).unwrap();
        let hex = digest_hex(d);
        assert_eq!(hex.len(), 32);
        assert_eq!(parse_digest_hex(&hex), Some(d));
        assert_eq!(parse_digest_hex("xyz"), None);
        assert_eq!(parse_digest_hex(""), None);
    }

    #[test]
    fn bad_inputs_are_errors_not_panics() {
        assert!(source_digest("garbage", None, 2, "all", "sat", 1).is_err());
        assert!(source_digest(MP, Some("no-such-model"), 2, "all", "sat", 1).is_err());
        assert!(source_digest(MP, None, 2, "all", "z3", 1).is_err());
    }
}
