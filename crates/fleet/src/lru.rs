//! A bounded LRU map with O(1) lookup, insert, and eviction.
//!
//! Slab-backed doubly linked list + `HashMap` index — the classic
//! linked-hashmap layout, written out because the sanctioned offline
//! dependency set has no `lru` crate. Used by the result cache under a
//! `Mutex`; the structure itself is single-threaded.

use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: Option<usize>,
    next: Option<usize>,
}

/// The map. Capacity is fixed at construction; inserting into a full
/// map evicts the least-recently-used entry and returns it.
#[derive(Debug)]
pub struct LruMap<K, V> {
    index: HashMap<K, usize>,
    /// Slab of nodes; `None` slots are free (tracked in `free`).
    slab: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    /// Most recently used.
    head: Option<usize>,
    /// Least recently used.
    tail: Option<usize>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruMap<K, V> {
        let capacity = capacity.max(1);
        LruMap {
            index: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn node(&self, idx: usize) -> &Node<K, V> {
        self.slab[idx].as_ref().expect("linked index is live")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<K, V> {
        self.slab[idx].as_mut().expect("linked index is live")
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.index.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.node(idx).value)
    }

    /// Whether `key` is present, *without* promoting it.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts (or replaces) `key`, promoting it. Returns the evicted
    /// least-recently-used `(key, value)` when the insert overflowed
    /// the capacity.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.index.get(&key) {
            self.node_mut(idx).value = value;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.index.len() >= self.capacity {
            self.evict_tail()
        } else {
            None
        };
        let node = Node {
            key: key.clone(),
            value,
            prev: None,
            next: None,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.index.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Entries from most- to least-recently-used.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        std::iter::successors(self.head, |&i| self.node(i).next)
            .map(|i| (&self.node(i).key, &self.node(i).value))
    }

    fn evict_tail(&mut self) -> Option<(K, V)> {
        let tail = self.tail?;
        self.unlink(tail);
        self.free.push(tail);
        let node = self.slab[tail].take().expect("tail is live");
        self.index.remove(&node.key);
        Some((node.key, node.value))
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        match prev {
            Some(p) => self.node_mut(p).next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.node_mut(n).prev = prev,
            None => self.tail = prev,
        }
        let n = self.node_mut(idx);
        n.prev = None;
        n.next = None;
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = None;
            n.next = old_head;
        }
        if let Some(h) = old_head {
            self.node_mut(h).prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut m = LruMap::new(4);
        assert!(m.is_empty());
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get(&"a"), Some(&1));
        assert_eq!(m.get(&"b"), Some(&2));
        assert_eq!(m.get(&"c"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        // Touch "a" so "b" is the LRU.
        assert_eq!(m.get(&"a"), Some(&1));
        let evicted = m.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(m.contains(&"a"));
        assert!(m.contains(&"c"));
        assert!(!m.contains(&"b"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.insert("a", 10), None);
        assert_eq!(m.get(&"a"), Some(&10));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iterates_mru_first() {
        let mut m = LruMap::new(8);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            m.insert(k, v);
        }
        m.get(&"a");
        let order: Vec<_> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec!["a", "c", "b"]);
    }

    #[test]
    fn capacity_one_behaves() {
        let mut m = LruMap::new(1);
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("b", 2), Some(("a", 1)));
        assert_eq!(m.get(&"b"), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn slot_reuse_after_heavy_churn() {
        let mut m = LruMap::new(4);
        for i in 0..100u32 {
            m.insert(i, i * 10);
            assert!(m.len() <= 4);
        }
        // Only the last four survive, in MRU order.
        let keys: Vec<_> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![99, 98, 97, 96]);
        // The slab never grew past capacity.
        assert!(m.slab.len() <= 4);
    }
}
