//! Cost-aware two-level scheduling: fast lane + work stealing.
//!
//! The FIFO job queue had a convoy problem: a cheap litmus query
//! arriving behind a few encoding monsters waits for all of them even
//! when most workers are idle moments later. This scheduler keeps the
//! queue's exact external contract — bounded, non-blocking `try_push`
//! with `Full`/`Closed` backpressure, blocking `pop`, close-then-drain
//! shutdown — but routes internally by *predicted cost* (see
//! `gpumc_encode::cost`):
//!
//! * jobs at or under the fast-lane threshold go to one shared FIFO
//!   fast lane, popped by every worker before any heavy work;
//! * heavier jobs go to the least-loaded worker's own heavy lane
//!   (load = sum of queued predicted cost, so one monster counts like
//!   many mediums);
//! * an idle worker with nothing queued steals from the *back* of the
//!   most-loaded heavy lane, so imbalance self-corrects without
//!   reordering the victim's next job.
//!
//! Everything lives under one mutex: at serve's job granularity
//! (milliseconds to minutes of solving per pop), lock contention is
//! noise, and a single-lock design makes the close/drain semantics —
//! "every accepted job gets an answer" — easy to keep airtight.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused (mirrors the job queue's contract).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The scheduler holds `capacity` jobs; the job is handed back.
    Full(T),
    /// [`CostScheduler::close`] was called; the job is handed back.
    Closed(T),
}

/// Counters for the `metrics` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs routed to the shared fast lane.
    pub fast: u64,
    /// Jobs routed to a heavy lane.
    pub heavy: u64,
    /// Heavy jobs popped by a worker other than the one they were
    /// assigned to.
    pub steals: u64,
}

#[derive(Debug)]
struct State<T> {
    /// The shared fast lane: `(job, predicted_cost)`.
    fast: VecDeque<(T, u64)>,
    /// One heavy lane per worker: `(job, predicted_cost)`.
    lanes: Vec<VecDeque<(T, u64)>>,
    /// Sum of queued predicted cost per lane.
    lane_cost: Vec<u64>,
    /// Sum of queued predicted cost across every lane (the admission
    /// gate's queue-pressure input).
    total_cost: u64,
    len: usize,
    closed: bool,
    stats: SchedStats,
}

/// The scheduler. See the module docs.
#[derive(Debug)]
pub struct CostScheduler<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    fast_max_cost: u64,
}

impl<T> CostScheduler<T> {
    /// At most `capacity` queued jobs across all lanes; `workers` heavy
    /// lanes; jobs with predicted cost `<= fast_max_cost` take the fast
    /// lane.
    pub fn new(capacity: usize, workers: usize, fast_max_cost: u64) -> CostScheduler<T> {
        let lanes = workers.max(1);
        CostScheduler {
            state: Mutex::new(State {
                fast: VecDeque::new(),
                lanes: (0..lanes).map(|_| VecDeque::new()).collect(),
                lane_cost: vec![0; lanes],
                total_cost: 0,
                len: 0,
                closed: false,
                stats: SchedStats::default(),
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            fast_max_cost,
        }
    }

    /// Enqueues without blocking; a full or closed scheduler refuses.
    pub fn try_push(&self, job: T, cost: u64) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed(job));
        }
        if s.len >= self.capacity {
            return Err(PushError::Full(job));
        }
        if cost <= self.fast_max_cost {
            s.fast.push_back((job, cost));
            s.stats.fast += 1;
        } else {
            // Least-loaded lane; ties go to the lowest index, which
            // keeps single-producer workloads deterministic.
            let lane = (0..s.lanes.len())
                .min_by_key(|&i| s.lane_cost[i])
                .expect("at least one lane");
            s.lanes[lane].push_back((job, cost));
            s.lane_cost[lane] += cost;
            s.stats.heavy += 1;
        }
        s.total_cost += cost;
        s.len += 1;
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job for `worker`. Order: shared fast lane,
    /// own heavy lane, then stealing from the most-loaded other lane.
    /// `None` means closed *and* fully drained — the worker should
    /// exit.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            let lane = worker % s.lanes.len();
            if let Some((job, cost)) = s.fast.pop_front() {
                s.total_cost -= cost;
                s.len -= 1;
                return Some(job);
            }
            if let Some((job, cost)) = s.lanes[lane].pop_front() {
                s.lane_cost[lane] -= cost;
                s.total_cost -= cost;
                s.len -= 1;
                return Some(job);
            }
            let victim = (0..s.lanes.len())
                .filter(|&i| i != lane && !s.lanes[i].is_empty())
                .max_by_key(|&i| s.lane_cost[i]);
            if let Some(v) = victim {
                let (job, cost) = s.lanes[v].pop_back().expect("victim lane non-empty");
                s.lane_cost[v] -= cost;
                s.total_cost -= cost;
                s.len -= 1;
                s.stats.steals += 1;
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap();
        }
    }

    /// Stops accepting new jobs and wakes every blocked worker. Already
    /// accepted jobs remain poppable (drain semantics).
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Whether [`CostScheduler::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Takes every queued job without blocking (the supervisor's
    /// shutdown last resort): fast lane first, then heavy lanes in
    /// index order.
    pub fn drain_now(&self) -> Vec<T> {
        let mut s = self.state.lock().unwrap();
        let mut out: Vec<T> = s.fast.drain(..).map(|(job, _)| job).collect();
        let lanes = s.lanes.len();
        for i in 0..lanes {
            out.extend(s.lanes[i].drain(..).map(|(job, _)| job));
            s.lane_cost[i] = 0;
        }
        s.total_cost = 0;
        s.len = 0;
        out
    }

    /// Jobs currently queued across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len
    }

    /// Sum of queued predicted cost across all lanes.
    pub fn total_cost(&self) -> u64 {
        self.state.lock().unwrap().total_cost
    }

    /// The configured queue capacity (jobs, not cost).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> SchedStats {
        self.state.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fast_lane_overtakes_heavy_backlog() {
        // One worker, a heavy job queued ahead: a cheap job pushed
        // *later* must still pop first — the whole point of the lane.
        let s = CostScheduler::new(8, 1, 10);
        s.try_push("heavy-1", 1000).unwrap();
        s.try_push("heavy-2", 1000).unwrap();
        s.try_push("cheap", 1).unwrap();
        assert_eq!(s.pop(0), Some("cheap"));
        assert_eq!(s.pop(0), Some("heavy-1"));
        assert_eq!(s.pop(0), Some("heavy-2"));
        let st = s.stats();
        assert_eq!((st.fast, st.heavy), (1, 2));
    }

    #[test]
    fn heavy_jobs_balance_by_cost_not_count() {
        let s = CostScheduler::new(8, 2, 0);
        // One monster to lane 0, then mediums must all prefer lane 1.
        s.try_push("monster", 1000).unwrap();
        s.try_push("m1", 100).unwrap();
        s.try_push("m2", 100).unwrap();
        s.try_push("m3", 100).unwrap();
        assert_eq!(s.pop(0), Some("monster"));
        assert_eq!(s.pop(1), Some("m1"));
        assert_eq!(s.pop(1), Some("m2"));
        assert_eq!(s.pop(1), Some("m3"));
    }

    #[test]
    fn idle_worker_steals_from_the_loaded_lane() {
        let s = CostScheduler::new(8, 2, 0);
        // Both land on alternating lanes; drain lane 1 then steal.
        s.try_push("a", 100).unwrap(); // lane 0
        s.try_push("b", 100).unwrap(); // lane 1
        s.try_push("c", 100).unwrap(); // lane 0 or 1 (tie -> lane 0)
        assert_eq!(s.pop(1), Some("b"));
        // Lane 1 empty: worker 1 steals from the back of lane 0.
        assert_eq!(s.pop(1), Some("c"));
        assert_eq!(s.pop(0), Some("a"));
        assert_eq!(s.stats().steals, 1);
    }

    #[test]
    fn capacity_counts_all_lanes() {
        let s = CostScheduler::new(2, 4, 10);
        s.try_push("fast", 1).unwrap();
        s.try_push("heavy", 100).unwrap();
        match s.try_push("over", 1) {
            Err(PushError::Full(j)) => assert_eq!(j, "over"),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn close_drains_then_stops() {
        let s = CostScheduler::new(8, 2, 10);
        s.try_push(1, 1).unwrap();
        s.try_push(2, 100).unwrap();
        s.close();
        assert!(matches!(s.try_push(3, 1), Err(PushError::Closed(3))));
        assert_eq!(s.pop(0), Some(1));
        assert_eq!(s.pop(0), Some(2));
        assert_eq!(s.pop(0), None);
        assert!(s.is_closed());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let s = Arc::new(CostScheduler::<u32>::new(4, 4, 10));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.pop(w))
            })
            .collect();
        s.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn drain_now_takes_everything() {
        let s = CostScheduler::new(8, 3, 10);
        s.try_push(1, 1).unwrap();
        s.try_push(2, 100).unwrap();
        s.try_push(3, 200).unwrap();
        s.close();
        let mut drained = s.drain_now();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(s.pop(0), None, "drain_now leaves nothing poppable");
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn shutdown_race_loses_no_job() {
        // Ported from the FIFO queue's regression test: a close racing
        // concurrent pushes must leave every job either drainable or
        // handed back — never silently dropped.
        for round in 0..50 {
            let s = Arc::new(CostScheduler::new(4, 2, 10));
            let accepted = Arc::new(Mutex::new(Vec::new()));
            let bounced = Arc::new(Mutex::new(Vec::new()));
            std::thread::scope(|scope| {
                for p in 0..3u32 {
                    let s = Arc::clone(&s);
                    let accepted = Arc::clone(&accepted);
                    let bounced = Arc::clone(&bounced);
                    scope.spawn(move || {
                        for i in 0..20u32 {
                            let job = p * 100 + i;
                            // Alternate lanes to cover both paths.
                            match s.try_push(job, if i % 2 == 0 { 1 } else { 100 }) {
                                Ok(()) => accepted.lock().unwrap().push(job),
                                Err(PushError::Full(j) | PushError::Closed(j)) => {
                                    bounced.lock().unwrap().push(j);
                                }
                            }
                        }
                    });
                }
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..round % 7 {
                        std::thread::yield_now();
                    }
                    s.close();
                });
            });
            let mut drained = s.drain_now();
            drained.sort_unstable();
            let mut acc = accepted.lock().unwrap().clone();
            acc.sort_unstable();
            assert_eq!(drained, acc, "every accepted job is drainable");
            assert_eq!(drained.len() + bounced.lock().unwrap().len(), 60);
        }
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let s = Arc::new(CostScheduler::new(8, 4, 50));
        let total = 400u32;
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let s = Arc::clone(&s);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    while let Some(v) = s.pop(w) {
                        consumed.lock().unwrap().push(v);
                    }
                })
            })
            .collect();
        std::thread::scope(|scope| {
            for p in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..total / 4 {
                        let mut job = p * 1000 + i;
                        loop {
                            match s.try_push(job, u64::from(job % 100)) {
                                Ok(()) => break,
                                Err(PushError::Full(j)) => {
                                    job = j;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                });
            }
        });
        s.close();
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = consumed.lock().unwrap().clone();
        got.sort_unstable();
        let mut want: Vec<u32> = (0..4)
            .flat_map(|p| (0..total / 4).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
