//! The content-addressed result cache.
//!
//! Keyed by the canonical request digest ([`crate::digest`]); holds the
//! *verdict facts* of a completed verification — exactly the fields of
//! the protocol's `verdict` object, as protocol vocabulary strings, so
//! a cache hit reproduces the response byte-identically. Two layers:
//!
//! * a bounded in-memory [`LruMap`](crate::lru::LruMap), always on;
//! * an optional persistent [`Store`](crate::store::Store) with
//!   versioned invalidation (see the store docs).
//!
//! What is *never* cached: `unknown` (budget/deadline — retrying is
//! the point), `error`, `failed`, and anything computed under an armed
//! fault plan (injected faults must not leak verdicts into steady
//! state). Callers enforce the first three by only constructing
//! [`CachedVerdict`] from a definitive outcome; the server enforces the
//! fault rule by bypassing the cache entirely for fault-armed jobs.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::lru::LruMap;
use crate::store::{LoadReport, Store, STORE_FILE};

/// The verdict facts of one definitive verification, in protocol
/// vocabulary (`expectation`: `holds`/`fails`/`none`; `liveness`:
/// `ok`/`violation`; `datarace`: `found`/`none`/`n/a`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    pub test: String,
    pub reachable: bool,
    pub expectation: String,
    pub liveness: String,
    pub datarace: String,
}

/// Aggregate counters, sampled for the `metrics` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    /// Entries loaded from the persistent store at open.
    pub loaded: u64,
    /// Whether the persistent store was truncated at open because its
    /// fingerprint mismatched.
    pub invalidated: bool,
    /// Torn-tail bytes truncated from the persistent store at open (a
    /// crash mid-append; the prefix survived).
    pub recovered_tail_bytes: u64,
}

/// The cache. Thread-safe; shared across the server behind an `Arc`.
#[derive(Debug)]
pub struct ResultCache {
    lru: Mutex<LruMap<u128, CachedVerdict>>,
    store: Option<Mutex<Store>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    loaded: u64,
    invalidated: bool,
    recovered_tail_bytes: u64,
}

impl ResultCache {
    /// A purely in-memory cache of at most `capacity` verdicts.
    pub fn in_memory(capacity: usize) -> ResultCache {
        ResultCache {
            lru: Mutex::new(LruMap::new(capacity)),
            store: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            loaded: 0,
            invalidated: false,
            recovered_tail_bytes: 0,
        }
    }

    /// A cache backed by `dir/results.jsonl`, invalidated when
    /// `fingerprint` (the verifier build + digest scheme) changes.
    /// Entries on disk beyond `capacity` stay on disk and re-enter the
    /// LRU only on re-verification.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating `dir` or opening the store.
    pub fn persistent(
        capacity: usize,
        dir: &Path,
        fingerprint: &str,
    ) -> std::io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let (store, report) = Store::open(&dir.join(STORE_FILE), fingerprint)?;
        let LoadReport {
            entries,
            invalidated,
            recovered_tail_bytes,
            ..
        } = report;
        let mut lru = LruMap::new(capacity);
        let loaded = entries.len() as u64;
        // File order is oldest-first; inserting in order leaves the
        // newest entries resident when the store exceeds capacity.
        for (digest, verdict) in entries {
            lru.insert(digest, verdict);
        }
        Ok(ResultCache {
            lru: Mutex::new(lru),
            store: Some(Mutex::new(store)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            loaded,
            invalidated,
            recovered_tail_bytes,
        })
    }

    /// Looks up a digest, counting a hit or a miss.
    pub fn lookup(&self, digest: u128) -> Option<CachedVerdict> {
        let found = self.lru.lock().unwrap().get(&digest).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records a definitive verdict, appending to the persistent store
    /// when there is one. Store write errors are swallowed (the disk
    /// layer is an optimization; the in-memory layer stays correct).
    pub fn insert(&self, digest: u128, verdict: CachedVerdict) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            let _ = store.lock().unwrap().append(digest, &verdict);
        }
        self.lru.lock().unwrap().insert(digest, verdict);
    }

    /// Resident (in-memory) entry count.
    pub fn len(&self) -> usize {
        self.lru.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            loaded: self.loaded,
            invalidated: self.invalidated,
            recovered_tail_bytes: self.recovered_tail_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(test: &str) -> CachedVerdict {
        CachedVerdict {
            test: test.to_string(),
            reachable: false,
            expectation: "holds".to_string(),
            liveness: "ok".to_string(),
            datarace: "none".to_string(),
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = ResultCache::in_memory(16);
        assert_eq!(c.lookup(1), None);
        c.insert(1, verdict("t"));
        assert_eq!(c.lookup(1).unwrap().test, "t");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn lru_bound_holds() {
        let c = ResultCache::in_memory(2);
        for d in 0..10u128 {
            c.insert(d, verdict("t"));
        }
        assert_eq!(c.len(), 2);
        assert!(c.lookup(9).is_some());
        assert!(c.lookup(0).is_none());
    }

    #[test]
    fn persistent_roundtrip_and_invalidation() {
        let dir = std::env::temp_dir().join(format!("gpumc-fleet-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c = ResultCache::persistent(16, &dir, "fp-a").unwrap();
            c.insert(42, verdict("warm"));
        }
        // Same fingerprint: warm start.
        {
            let c = ResultCache::persistent(16, &dir, "fp-a").unwrap();
            assert_eq!(c.stats().loaded, 1);
            assert!(!c.stats().invalidated);
            assert_eq!(c.lookup(42).unwrap().test, "warm");
        }
        // New fingerprint: cold start, file truncated.
        {
            let c = ResultCache::persistent(16, &dir, "fp-b").unwrap();
            assert_eq!(c.stats().loaded, 0);
            assert!(c.stats().invalidated);
            assert_eq!(c.lookup(42), None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c = std::sync::Arc::new(ResultCache::in_memory(64));
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..50u128 {
                        let d = t * 1000 + i;
                        c.insert(d, verdict("x"));
                        assert!(c.lookup(d).is_some());
                    }
                });
            }
        });
        assert_eq!(c.stats().inserts, 200);
    }
}
