//! Per-shard health: a three-state circuit breaker.
//!
//! The router's old failure handling probed a dead shard on every
//! round: each request burned a connect timeout rediscovering the same
//! corpse. The breaker quarantines instead — `Closed` (healthy) trips
//! to `Open` after `failure_threshold` *consecutive* transport
//! failures, `Open` refuses all traffic for `cooldown_ms`, then admits
//! exactly one probe (`HalfOpen`); the probe's outcome either
//! re-closes the breaker (the shard rejoined) or re-opens it for
//! another cooldown. Only transport-level trouble counts as failure:
//! a `rejected`/`shed` answer proves the shard is alive, so it resets
//! the failure streak even though the request must fail over.
//!
//! Time is a caller-supplied millisecond counter (the router derives
//! it from one run-scoped [`std::time::Instant`]), which keeps every
//! transition unit-testable without sleeping.

/// Breaker tuning; [`BreakerConfig::default`] matches the CLI defaults.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive transport failures that trip `Closed` → `Open`.
    pub failure_threshold: u32,
    /// How long an `Open` breaker refuses traffic before admitting a
    /// half-open probe.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 500,
        }
    }
}

/// The classic three states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// What [`CircuitBreaker::admit`] decided for one prospective attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Healthy: send the request.
    Admit,
    /// The cooldown elapsed and this caller won the single probe slot;
    /// send the request, and report the outcome like any other.
    Probe,
    /// Quarantined: pick another shard.
    Quarantined,
}

/// One shard's breaker. Not internally synchronized — the router wraps
/// each in a mutex.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Consecutive transport failures since the last success.
    streak: u32,
    /// When the breaker last tripped (caller clock).
    opened_at_ms: u64,
    /// A half-open probe is in flight; further admits are refused.
    probing: bool,
    /// Times the breaker tripped `Closed`/`HalfOpen` → `Open`.
    pub trips: u64,
    /// Times a half-open probe succeeded and re-closed the breaker.
    pub readmissions: u64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            streak: 0,
            opened_at_ms: 0,
            probing: false,
            trips: 0,
            readmissions: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decides whether an attempt may target this shard at `now_ms`.
    pub fn admit(&mut self, now_ms: u64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                if now_ms.saturating_sub(self.opened_at_ms) >= self.cfg.cooldown_ms {
                    self.state = BreakerState::HalfOpen;
                    self.probing = true;
                    Admission::Probe
                } else {
                    Admission::Quarantined
                }
            }
            BreakerState::HalfOpen => {
                if self.probing {
                    Admission::Quarantined
                } else {
                    self.probing = true;
                    Admission::Probe
                }
            }
        }
    }

    /// When an `Open` breaker will next admit a probe, if ever.
    pub fn next_probe_at(&self) -> Option<u64> {
        match self.state {
            BreakerState::Open => Some(self.opened_at_ms + self.cfg.cooldown_ms),
            _ => None,
        }
    }

    /// The shard produced *any* response (even `rejected`/`shed`): the
    /// transport is healthy. Returns `true` when this was the half-open
    /// probe re-closing the breaker.
    pub fn on_success(&mut self) -> bool {
        let readmitted = self.state == BreakerState::HalfOpen;
        if readmitted {
            self.readmissions += 1;
        }
        self.state = BreakerState::Closed;
        self.streak = 0;
        self.probing = false;
        readmitted
    }

    /// A transport failure (connect refused, connection died, read
    /// timed out). Returns `true` when this tripped the breaker open.
    pub fn on_failure(&mut self, now_ms: u64) -> bool {
        self.streak = self.streak.saturating_add(1);
        let trip = match self.state {
            // A failed probe goes straight back to quarantine.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.streak >= self.cfg.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.opened_at_ms = now_ms;
            self.probing = false;
            self.trips += 1;
        }
        trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms: cooldown,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker(3, 100);
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(1));
        b.on_success(); // streak broken: shard answered
        assert!(!b.on_failure(2));
        assert!(!b.on_failure(3));
        assert!(b.on_failure(4), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
    }

    #[test]
    fn open_refuses_until_cooldown_then_admits_one_probe() {
        let mut b = breaker(1, 100);
        b.on_failure(10);
        assert_eq!(b.admit(50), Admission::Quarantined);
        assert_eq!(b.next_probe_at(), Some(110));
        assert_eq!(b.admit(110), Admission::Probe);
        // The probe is in flight: everyone else stays out.
        assert_eq!(b.admit(111), Admission::Quarantined);
        assert!(b.on_success(), "probe success is a readmission");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.readmissions, 1);
        assert_eq!(b.admit(112), Admission::Admit);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let mut b = breaker(1, 100);
        b.on_failure(0);
        assert_eq!(b.admit(100), Admission::Probe);
        assert!(b.on_failure(105), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(150), Admission::Quarantined);
        assert_eq!(b.admit(205), Admission::Probe);
        assert!(b.on_success());
        assert_eq!(b.trips, 2);
        assert_eq!(b.readmissions, 1);
    }

    #[test]
    fn shed_style_success_resets_the_streak() {
        // rejected/shed answers prove liveness: two failures, an
        // answer, two more failures must NOT trip a threshold of 3.
        let mut b = breaker(3, 100);
        b.on_failure(0);
        b.on_failure(1);
        b.on_success();
        b.on_failure(2);
        assert!(!b.on_failure(3));
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
