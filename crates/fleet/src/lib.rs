//! `gpumc-fleet` — the scale-out layer between one gpumc daemon and a
//! fleet of them.
//!
//! The paper's whole evaluation (Tables 5–7) re-runs the same litmus
//! and kernel queries across models, bounds, and properties; real
//! verification traffic is overwhelmingly duplicate work. This crate
//! provides the three pieces that turn `gpumc-serve` from "one daemon
//! with warm caches" into fleet shape (DESIGN.md §16):
//!
//! * [`digest`] — a canonical, persistable request identity: a stable
//!   128-bit digest of (test AST × model source × bound × property ×
//!   engine × protocol version). Unlike `EventGraph::fingerprint`
//!   (process-local `DefaultHasher`), this digest is FNV-1a over a
//!   canonical rendering and safe to write to disk or route on.
//! * [`cache`] — a content-addressed result cache keyed by that digest:
//!   a bounded in-memory LRU ([`lru`]) plus an optional persistent
//!   JSONL store ([`store`]) with versioned invalidation keyed on the
//!   verifier fingerprint. Only definitive verdicts are cached — never
//!   `unknown` or `failed`.
//! * [`sched`] — a cost-aware two-level scheduler replacing the FIFO
//!   job queue: a shared fast lane for cheap litmus queries plus
//!   per-worker heavy lanes with work stealing, so a small query is
//!   never stuck behind an encoding monster.
//! * [`router`] — `gpumc route`: fan a suite over N serve instances by
//!   digest over a consistent-hash ring ([`ring`]), merge responses
//!   deterministically, and self-heal around trouble: per-shard
//!   circuit breakers ([`health`]) quarantine dead nodes, hedged
//!   requests tame tail latency, and an exhausted request is always
//!   *classified* (`failed`/`shed`), never dropped.
//!
//! Everything is std-only, like the rest of the serving stack. The JSON
//! plumbing ([`json`]) lives here (moved from `gpumc-serve`, which
//! re-exports it) so the router and the persistent store can speak the
//! wire format without depending on the server.

pub mod cache;
pub mod digest;
pub mod health;
pub mod json;
pub mod lru;
pub mod ring;
pub mod router;
pub mod sched;
pub mod store;

pub use cache::{CachedVerdict, ResultCache};
pub use digest::{request_digest, RequestKey, DIGEST_SCHEME_VERSION};
pub use health::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use json::Json;
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{
    home_shard, route, routing_digest, HedgeStats, RoutePolicy, RouteReport, RouteRequest,
};
pub use sched::{CostScheduler, PushError};
