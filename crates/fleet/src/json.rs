//! A minimal JSON value, parser, and writer.
//!
//! The sanctioned offline dependency set has no serde, and the protocol
//! needs only scalar fields, flat objects, and short arrays, so this
//! module implements exactly RFC 8259 with two simplifications: numbers
//! are held as `f64` (integers up to 2^53 round-trip exactly, far above
//! any counter the service emits), and object key order is preserved
//! (insertion order) so serialized responses are deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (no duplicate-key handling:
    /// the last occurrence wins on lookup, all are serialized).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience integer constructor.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A u64 counter as a JSON number (exact up to 2^53).
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            text: input,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace), suitable for JSON-lines.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    /// The same input as a `&str`, for safe char-boundary slicing.
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The cursor only ever
                    // advances by ASCII tokens or whole chars, so it sits
                    // on a char boundary; `get` makes that a structured
                    // error instead of a panic if the invariant breaks.
                    let c = self
                        .text
                        .get(self.pos..)
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| format!("malformed UTF-8 at byte {}", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = self
            .text
            .get(start..self.pos)
            .ok_or_else(|| format!("malformed number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for src in ["null", "true", "false", "0", "-7", "125000", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
    }

    #[test]
    fn roundtrips_nested() {
        let src = r#"{"id":1,"verb":"verify","opts":{"bound":2,"deadline":null},"tags":["a","b"]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("verb").unwrap().as_str(), Some("verify"));
        assert_eq!(
            v.get("opts").unwrap().get("bound").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("line1\nline2\t\"quoted\" \\ done".into());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn litmus_sources_embed_safely() {
        // The protocol carries whole litmus tests as string fields.
        let src = "PTX MP\n{ x = 0; }\nP0 | P1 ;\nexists (P1:r0 == 1 /\\ P1:r1 == 0)";
        let v = Json::Obj(vec![("source".into(), Json::str(src))]);
        let line = v.to_string();
        assert!(!line.contains('\n'), "JSON-lines framing must hold");
        assert_eq!(
            Json::parse(&line).unwrap().get("source").unwrap().as_str(),
            Some(src)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn counters_round_trip_exactly() {
        let v = Json::count(9_007_199_254_740_992); // 2^53
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(1 << 53));
    }

    #[test]
    fn last_key_wins_on_lookup() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
    }
}
