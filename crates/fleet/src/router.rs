//! Sharded routing: fan a suite over N serve instances, merge
//! deterministically, survive node death, stalls, and overload.
//!
//! Requests are assigned to shards by content digest over a
//! consistent-hash ring ([`crate::ring`]), so identical queries always
//! land on the same node and its result cache, and a topology change
//! moves as few digests as possible. Each request is driven
//! end-to-end by its own driver (a bounded pool), which walks the
//! ring's successor order under per-shard circuit breakers
//! ([`crate::health`]): a shard that keeps failing at the transport
//! level is quarantined and probed again only after a cooldown,
//! instead of burning a connect timeout per request.
//!
//! Failure semantics (DESIGN.md §16, §18):
//!
//! * `done` / `unknown` / `error` responses are *answers* — final.
//! * `rejected` (backpressure), `shed` (admission control), and
//!   `failed` (the node's retry policy gave up) responses are
//!   *node-level* trouble: the request fails over to the next ring
//!   successor after a backoff. Any response proves the transport is
//!   healthy, so these reset the shard's failure streak.
//! * a transport failure (connect refused, connection died, read timed
//!   out) counts against the shard's breaker; enough consecutive
//!   failures trip it open and quarantine the shard until a half-open
//!   probe readmits it.
//! * when the attempt budget or the per-request deadline
//!   ([`RoutePolicy::deadline_ms`]) is exhausted, the request answers
//!   a *classified* line: `status:"failed"` (class `cluster`, with the
//!   attempt count), or `status:"shed"` when the last word from the
//!   fleet was admission control. Nothing is ever silently dropped.
//!
//! With [`RoutePolicy::hedge_ms`] set, a request that a shard has held
//! past the hedge threshold (base + predicted cost /
//! [`RoutePolicy::hedge_cost_div`]) is *hedged*: the same digest is
//! fired at the next ring successor and the first definitive answer
//! wins. Both answers reduce to the same order-independent merged
//! line; the router `debug_assert!`s that and counts duplicates and
//! mismatches in [`HedgeStats`].
//!
//! A per-request fault plan (the `faults` field) is a *node-local*
//! injection: it rides the first attempt only and is stripped on
//! failover and hedging, so an injected node death cannot chase the
//! request across the fleet it was meant to test.
//!
//! The merged output is one line per request, *in input order*, each
//! carrying only order-independent fields (no ids, no timings) — so a
//! 2-shard run with a mid-run node death is byte-identical to a
//! single-node run of the same suite.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::digest::source_digest;
use crate::health::{Admission, BreakerConfig, CircuitBreaker};
use crate::json::Json;
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Concurrent in-flight requests (each may add one hedge attempt).
const MAX_DRIVERS: usize = 16;

/// How long a driver waits for a hedge loser's answer (for the
/// duplicate check) when no deadline or read timeout bounds it.
const LOSER_WAIT_MS: u64 = 2_000;

/// One request of a routed suite.
#[derive(Debug, Clone)]
pub struct RouteRequest {
    /// Display name (the catalog test name), used in failure lines.
    pub name: String,
    /// Litmus source.
    pub source: String,
    /// Model name; `None` uses the dialect default.
    pub model: Option<String>,
    pub bound: u32,
    /// Engine spelling (`sat`, `enumerate`, `alloy`, `dpor`).
    pub engine: String,
    pub timeout_ms: Option<u64>,
    /// Node-local fault injection; not propagated on failover.
    pub faults: Option<String>,
}

/// Cluster-wide retry, deadline, hedging, and health policy.
#[derive(Debug, Clone, Copy)]
pub struct RoutePolicy {
    /// Total attempts per request across all shards (hedges included);
    /// `0` means `2 × shards`.
    pub max_attempts: u32,
    /// Sleep before each retry attempt.
    pub backoff_ms: u64,
    /// Protocol version stamped on every request.
    pub proto: u32,
    /// Per-request deadline; past it the request answers
    /// `failed(timeout)` with its attempt count. `None` waits forever
    /// (the node-side timeout still applies).
    pub deadline_ms: Option<u64>,
    /// Base hedge threshold: an attempt outstanding this long fires a
    /// duplicate at the next ring successor. `None` disables hedging.
    pub hedge_ms: Option<u64>,
    /// Scales the hedge threshold by predicted cost: threshold =
    /// `hedge_ms + estimate_cost / hedge_cost_div` ms (0 disables the
    /// scaled term), so an encoding monster is not hedged as eagerly
    /// as a litmus query.
    pub hedge_cost_div: u64,
    /// Per-attempt socket read timeout; `None` leaves reads unbounded
    /// (a stalled shard then only resolves via `deadline_ms`).
    pub read_timeout_ms: Option<u64>,
    /// Per-shard circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
}

impl Default for RoutePolicy {
    fn default() -> RoutePolicy {
        RoutePolicy {
            max_attempts: 0,
            backoff_ms: 25,
            proto: 1,
            deadline_ms: None,
            hedge_ms: None,
            hedge_cost_div: 0,
            read_timeout_ms: None,
            breaker: BreakerConfig::default(),
            vnodes: DEFAULT_VNODES,
        }
    }
}

/// Per-shard accounting.
#[derive(Debug, Clone)]
pub struct ShardStats {
    pub addr: String,
    /// Requests sent (attempts, not unique requests).
    pub sent: u64,
    /// Final answers produced (hedge losers included).
    pub answered: u64,
    /// Whether the shard ever failed at the transport level.
    pub died: bool,
    /// Times the shard's breaker tripped open (quarantines).
    pub trips: u64,
    /// Times a half-open probe readmitted the shard.
    pub readmitted: u64,
}

/// Fleet-wide hedging counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HedgeStats {
    /// Hedge attempts fired.
    pub fired: u64,
    /// Hedge attempts that produced the winning answer.
    pub wins: u64,
    /// Requests where both the primary and the hedge answered.
    pub duplicates: u64,
    /// Duplicate answers whose merged lines differed (must be 0; also
    /// a `debug_assert!`).
    pub mismatches: u64,
}

/// The final state of one routed request.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    pub name: String,
    /// `done`, `unknown`, `error`, `failed`, or `shed`.
    pub status: String,
    /// The merged output line (order-independent fields only).
    pub line: String,
    /// Shard index that produced the final answer, if any.
    pub shard: Option<usize>,
    pub attempts: u32,
}

/// Everything [`route`] produces.
#[derive(Debug)]
pub struct RouteReport {
    /// One outcome per request, in input order.
    pub results: Vec<RouteOutcome>,
    pub shards: Vec<ShardStats>,
    pub hedge: HedgeStats,
}

impl RouteReport {
    /// The deterministic merge: one line per request in input order,
    /// with a trailing newline.
    pub fn merged(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.line);
            out.push('\n');
        }
        out
    }

    /// Whether every request reached a verdict (`done`).
    pub fn all_done(&self) -> bool {
        self.results.iter().all(|r| r.status == "done")
    }
}

/// The shard a digest homes on in an `n`-shard fleet: the owner on the
/// canonical ring (`s0..s{n-1}` ids), which is exactly how [`route`]
/// assigns. Exported so tests and operators can predict placement.
pub fn home_shard(digest: u128, shards: usize, vnodes: usize) -> usize {
    HashRing::with_shards(shards, vnodes.max(1))
        .owner(digest)
        .unwrap_or(0)
}

/// Routing digest for a request: the canonical content digest where the
/// request parses, an FNV fallback over the raw source where it does
/// not (the server will answer `error`; the request still needs *a*
/// home).
pub fn routing_digest(req: &RouteRequest, proto: u32) -> u128 {
    source_digest(
        &req.source,
        req.model.as_deref(),
        req.bound,
        "all",
        &req.engine,
        proto,
    )
    .unwrap_or_else(|_| {
        let mut h: u128 = 0xcbf2_9ce4_8422_2325;
        for b in req.source.bytes() {
            h ^= u128::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    })
}

/// Predicted relative cost of a request (the hedge threshold's scale
/// input); unparsable requests are trivially cheap.
fn predicted_cost(req: &RouteRequest) -> u64 {
    let Ok(program) = gpumc_litmus::parse(&req.source) else {
        return 0;
    };
    match gpumc_ir::unroll(&program, req.bound) {
        Ok(u) => gpumc_encode::estimate_cost(
            gpumc_ir::compile(&u).n_events(),
            req.bound,
            gpumc_encode::engine_weight(&req.engine),
        ),
        Err(_) => 0,
    }
}

/// What one attempt on one shard produced.
enum Attempt {
    /// A final answer (`done`/`unknown`/`error`).
    Final(Json),
    /// A retryable answer; `shed` distinguishes admission control from
    /// `rejected`/`failed` for the exhaustion classification.
    Retry { why: String, shed: bool },
    /// The connection failed or died: counts against the breaker.
    Transport(String),
}

/// One shard's connection for one attempt.
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ShardConn {
    fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<ShardConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        Ok(ShardConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request, awaits its response (matched by id).
    fn roundtrip(&mut self, id: u64, req: &Json) -> Result<Json, String> {
        writeln!(self.writer, "{req}").map_err(|e| format!("write: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-request".to_string());
            }
            let resp = Json::parse(line.trim_end()).map_err(|e| format!("bad response: {e}"))?;
            if resp.get("id").and_then(Json::as_u64) == Some(id) {
                return Ok(resp);
            }
            // Not ours (a stale pipelined answer): keep reading.
        }
    }
}

fn request_json(req: &RouteRequest, id: u64, proto: u32, with_faults: bool) -> Json {
    let mut fields = vec![
        ("id".into(), Json::count(id)),
        ("verb".into(), Json::str("verify")),
        ("proto".into(), Json::count(u64::from(proto))),
        ("source".into(), Json::str(&req.source)),
        ("bound".into(), Json::count(u64::from(req.bound))),
        ("engine".into(), Json::str(&req.engine)),
    ];
    if let Some(m) = &req.model {
        fields.push(("model".into(), Json::str(m)));
    }
    if let Some(t) = req.timeout_ms {
        fields.push(("timeout_ms".into(), Json::count(t)));
    }
    if with_faults {
        if let Some(f) = &req.faults {
            fields.push(("faults".into(), Json::str(f)));
        }
    }
    Json::Obj(fields)
}

/// Reduces a response to the order-independent merged line.
fn merged_line(name: &str, resp: &Json) -> (String, String) {
    match resp.get("status").and_then(Json::as_str) {
        Some("done") => {
            let verdict = resp.get("verdict").cloned().unwrap_or(Json::Null);
            ("done".to_string(), verdict.to_string())
        }
        Some("unknown") => {
            let reason = resp.get("reason").and_then(Json::as_str).unwrap_or("");
            let line = Json::Obj(vec![
                ("test".into(), Json::str(name)),
                ("status".into(), Json::str("unknown")),
                ("reason".into(), Json::str(reason)),
            ]);
            ("unknown".to_string(), line.to_string())
        }
        _ => {
            let error = resp.get("error").and_then(Json::as_str).unwrap_or("");
            let line = Json::Obj(vec![
                ("test".into(), Json::str(name)),
                ("status".into(), Json::str("error")),
                ("error".into(), Json::str(error)),
            ]);
            ("error".to_string(), line.to_string())
        }
    }
}

/// A classified unanswered request: `failed` or `shed`, always with
/// the attempt count.
fn classified_line(name: &str, status: &str, error: &str, attempts: u32) -> String {
    Json::Obj(vec![
        ("test".into(), Json::str(name)),
        ("status".into(), Json::str(status)),
        ("class".into(), Json::str("cluster")),
        ("error".into(), Json::str(error)),
        ("attempts".into(), Json::count(u64::from(attempts))),
    ])
    .to_string()
}

/// State shared by every driver and attempt thread of one [`route`].
struct ClusterState {
    addrs: Vec<String>,
    ring: HashRing,
    breakers: Vec<Mutex<CircuitBreaker>>,
    stats: Mutex<Vec<ShardStats>>,
    hedge_fired: AtomicU64,
    hedge_wins: AtomicU64,
    hedge_duplicates: AtomicU64,
    hedge_mismatches: AtomicU64,
    start: Instant,
    policy: RoutePolicy,
    max_attempts: u32,
}

impl ClusterState {
    /// The run-scoped millisecond clock the breakers run on.
    fn now_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// Fans `requests` over `shards` (serve addresses) and merges. See the
/// module docs for the failure semantics. Panics on an empty shard
/// list.
pub fn route(requests: &[RouteRequest], shards: &[String], policy: &RoutePolicy) -> RouteReport {
    assert!(!shards.is_empty(), "route needs at least one shard");
    let max_attempts = if policy.max_attempts == 0 {
        (shards.len() as u32) * 2
    } else {
        policy.max_attempts
    };
    let cl = Arc::new(ClusterState {
        addrs: shards.to_vec(),
        ring: HashRing::with_shards(shards.len(), policy.vnodes.max(1)),
        breakers: shards
            .iter()
            .map(|_| Mutex::new(CircuitBreaker::new(policy.breaker)))
            .collect(),
        stats: Mutex::new(
            shards
                .iter()
                .map(|addr| ShardStats {
                    addr: addr.clone(),
                    sent: 0,
                    answered: 0,
                    died: false,
                    trips: 0,
                    readmitted: 0,
                })
                .collect(),
        ),
        hedge_fired: AtomicU64::new(0),
        hedge_wins: AtomicU64::new(0),
        hedge_duplicates: AtomicU64::new(0),
        hedge_mismatches: AtomicU64::new(0),
        start: Instant::now(),
        policy: *policy,
        max_attempts,
    });
    let results: Mutex<Vec<Option<RouteOutcome>>> =
        Mutex::new((0..requests.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..requests.len().min(MAX_DRIVERS) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= requests.len() {
                    break;
                }
                let outcome = drive(&cl, &requests[i], i);
                results.lock().unwrap()[i] = Some(outcome);
            });
        }
    });
    let shards = cl.stats.lock().unwrap().clone();
    RouteReport {
        results: results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect(),
        shards,
        hedge: HedgeStats {
            fired: cl.hedge_fired.load(Ordering::Relaxed),
            wins: cl.hedge_wins.load(Ordering::Relaxed),
            duplicates: cl.hedge_duplicates.load(Ordering::Relaxed),
            mismatches: cl.hedge_mismatches.load(Ordering::Relaxed),
        },
    }
}

/// The first breaker-admitted shard in `succ` order, starting at
/// `offset` (so retries advance around the ring), skipping `exclude`.
fn pick_shard(
    cl: &ClusterState,
    succ: &[usize],
    offset: usize,
    exclude: &[usize],
    now_ms: u64,
) -> Option<usize> {
    for i in 0..succ.len() {
        let s = succ[(offset + i) % succ.len()];
        if exclude.contains(&s) {
            continue;
        }
        match cl.breakers[s].lock().unwrap().admit(now_ms) {
            Admission::Admit | Admission::Probe => return Some(s),
            Admission::Quarantined => {}
        }
    }
    None
}

/// Runs one attempt against one shard and reports its breaker/stat
/// effects. Runs on a detached thread so a stalled read never wedges a
/// driver past its deadline.
fn attempt_thread(
    cl: Arc<ClusterState>,
    shard: usize,
    req_json: Json,
    id: u64,
    read_timeout: Option<Duration>,
    slot: usize,
    tx: mpsc::Sender<(usize, usize, Attempt)>,
) {
    std::thread::spawn(move || {
        cl.stats.lock().unwrap()[shard].sent += 1;
        let result = run_attempt(&cl.addrs[shard], &req_json, id, read_timeout);
        match &result {
            Attempt::Final(_) | Attempt::Retry { .. } => {
                let readmitted = cl.breakers[shard].lock().unwrap().on_success();
                let mut stats = cl.stats.lock().unwrap();
                if readmitted {
                    stats[shard].readmitted += 1;
                }
                if matches!(result, Attempt::Final(_)) {
                    stats[shard].answered += 1;
                }
            }
            Attempt::Transport(_) => {
                let tripped = cl.breakers[shard].lock().unwrap().on_failure(cl.now_ms());
                let mut stats = cl.stats.lock().unwrap();
                stats[shard].died = true;
                if tripped {
                    stats[shard].trips += 1;
                }
            }
        }
        let _ = tx.send((slot, shard, result));
    });
}

fn run_attempt(addr: &str, req_json: &Json, id: u64, read_timeout: Option<Duration>) -> Attempt {
    if gpumc_fault::hit(gpumc_fault::points::ROUTE_TRANSPORT).is_some() {
        return Attempt::Transport("injected transport fault".to_string());
    }
    let mut conn = match ShardConn::connect(addr, read_timeout) {
        Ok(c) => c,
        Err(e) => return Attempt::Transport(format!("connect: {e}")),
    };
    // An armed `route.stall_ms:delay_ms` sleeps here: a stalled link.
    let _ = gpumc_fault::hit(gpumc_fault::points::ROUTE_STALL);
    match conn.roundtrip(id, req_json) {
        Ok(resp) => match resp.get("status").and_then(Json::as_str) {
            Some(status @ ("rejected" | "failed" | "shed")) => {
                let why = resp
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or(status)
                    .to_string();
                Attempt::Retry {
                    why,
                    shed: status == "shed",
                }
            }
            _ => Attempt::Final(resp),
        },
        Err(e) => Attempt::Transport(e),
    }
}

/// Drives one request to a final, always-classified outcome.
fn drive(cl: &Arc<ClusterState>, req: &RouteRequest, idx: usize) -> RouteOutcome {
    let digest = routing_digest(req, cl.policy.proto);
    let succ = cl.ring.successors(digest);
    let started = Instant::now();
    let deadline = cl.policy.deadline_ms.map(Duration::from_millis);
    let hedge_after = cl.policy.hedge_ms.map(|base| {
        let scaled = predicted_cost(req)
            .checked_div(cl.policy.hedge_cost_div)
            .unwrap_or(0);
        Duration::from_millis(base.saturating_add(scaled))
    });
    let remaining = |started: Instant| deadline.map(|d| d.saturating_sub(started.elapsed()));
    let expired = |started: Instant| remaining(started).is_some_and(|r| r.is_zero());
    let mut attempts: u32 = 0;
    let mut last_error = String::new();
    let mut last_shed = false;
    let mut stalls: u32 = 0;
    loop {
        if expired(started) {
            return timeout_outcome(req, attempts, &last_error, cl.policy.deadline_ms);
        }
        if attempts >= cl.max_attempts {
            return exhausted_outcome(req, attempts, &last_error, last_shed);
        }
        let Some(primary) = pick_shard(cl, &succ, attempts as usize, &[], cl.now_ms()) else {
            // Everyone quarantined: wait for the earliest half-open
            // probe window (bounded, so a wedged probe cannot spin us
            // forever without a deadline).
            stalls += 1;
            if stalls > cl.max_attempts.saturating_mul(8).max(16) {
                let err = format!("all shards quarantined; last error: {last_error}");
                return exhausted_outcome(req, attempts, &err, last_shed);
            }
            let now = cl.now_ms();
            let mut wait = cl.policy.backoff_ms.max(1);
            for b in &cl.breakers {
                if let Some(at) = b.lock().unwrap().next_probe_at() {
                    wait = wait.min(at.saturating_sub(now)).max(1);
                }
            }
            let mut wait = Duration::from_millis(wait.min(100));
            if let Some(r) = remaining(started) {
                wait = wait.min(r);
            }
            std::thread::sleep(wait);
            continue;
        };
        stalls = 0;
        if attempts > 0 && cl.policy.backoff_ms > 0 {
            std::thread::sleep(Duration::from_millis(cl.policy.backoff_ms));
        }
        // Per-attempt read timeout: the policy cap, tightened by the
        // remaining deadline.
        let read_timeout = match (cl.policy.read_timeout_ms, remaining(started)) {
            (Some(ms), Some(r)) => Some(Duration::from_millis(ms).min(r)),
            (Some(ms), None) => Some(Duration::from_millis(ms)),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        };
        let (tx, rx) = mpsc::channel();
        let with_faults = attempts == 0;
        attempt_thread(
            Arc::clone(cl),
            primary,
            request_json(req, idx as u64, cl.policy.proto, with_faults),
            idx as u64,
            read_timeout,
            0,
            tx.clone(),
        );
        let mut fired = vec![primary];
        attempts += 1;
        // Collect results from this wave (primary, plus at most one
        // hedge) until a final answer wins or every attempt reported.
        let mut winner: Option<(usize, usize, Json)> = None;
        let mut outstanding = 1usize;
        let mut hedged = false;
        while outstanding > 0 {
            let wait = if winner.is_some() {
                // Only the duplicate check rides on the loser: bounded.
                let cap = cl.policy.read_timeout_ms.unwrap_or(LOSER_WAIT_MS);
                Some(match remaining(started) {
                    Some(r) => Duration::from_millis(cap).min(r),
                    None => Duration::from_millis(cap),
                })
            } else if !hedged && hedge_after.is_some() {
                let h = hedge_after.unwrap();
                Some(match remaining(started) {
                    Some(r) => h.min(r),
                    None => h,
                })
            } else {
                remaining(started)
            };
            let received = match wait {
                Some(w) => rx.recv_timeout(w),
                None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            };
            match received {
                Ok((slot, shard, attempt)) => {
                    outstanding -= 1;
                    match attempt {
                        Attempt::Final(resp) => {
                            if let Some((_, _, first)) = &winner {
                                // The hedge loser also answered: both
                                // merged lines must agree bytewise.
                                cl.hedge_duplicates.fetch_add(1, Ordering::Relaxed);
                                let a = merged_line(&req.name, first).1;
                                let b = merged_line(&req.name, &resp).1;
                                if a != b {
                                    cl.hedge_mismatches.fetch_add(1, Ordering::Relaxed);
                                    debug_assert_eq!(
                                        a, b,
                                        "hedged duplicates diverged for `{}`",
                                        req.name
                                    );
                                }
                            } else {
                                if slot == 1 {
                                    cl.hedge_wins.fetch_add(1, Ordering::Relaxed);
                                }
                                winner = Some((slot, shard, resp));
                            }
                        }
                        Attempt::Retry { why, shed } => {
                            last_error = format!("{}: {why}", cl.addrs[shard]);
                            last_shed = shed;
                        }
                        Attempt::Transport(why) => {
                            last_error = format!("{}: {why}", cl.addrs[shard]);
                            last_shed = false;
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if winner.is_some() {
                        break; // give up waiting on the loser
                    }
                    if expired(started) {
                        return timeout_outcome(req, attempts, &last_error, cl.policy.deadline_ms);
                    }
                    if !hedged && hedge_after.is_some() && attempts < cl.max_attempts {
                        hedged = true;
                        if let Some(second) =
                            pick_shard(cl, &succ, attempts as usize, &fired, cl.now_ms())
                        {
                            cl.hedge_fired.fetch_add(1, Ordering::Relaxed);
                            attempt_thread(
                                Arc::clone(cl),
                                second,
                                request_json(req, idx as u64, cl.policy.proto, false),
                                idx as u64,
                                read_timeout,
                                1,
                                tx.clone(),
                            );
                            fired.push(second);
                            attempts += 1;
                            outstanding += 1;
                        }
                    } else {
                        hedged = true; // nothing else to do but wait
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if let Some((_, shard, resp)) = winner {
            let (status, line) = merged_line(&req.name, &resp);
            return RouteOutcome {
                name: req.name.clone(),
                status,
                line,
                shard: Some(shard),
                attempts,
            };
        }
    }
}

fn timeout_outcome(
    req: &RouteRequest,
    attempts: u32,
    last_error: &str,
    deadline_ms: Option<u64>,
) -> RouteOutcome {
    let mut error = format!(
        "timeout: deadline {}ms exceeded",
        deadline_ms.unwrap_or_default()
    );
    if !last_error.is_empty() {
        error.push_str(&format!("; last error: {last_error}"));
    }
    RouteOutcome {
        name: req.name.clone(),
        status: "failed".to_string(),
        line: classified_line(&req.name, "failed", &error, attempts),
        shard: None,
        attempts,
    }
}

fn exhausted_outcome(
    req: &RouteRequest,
    attempts: u32,
    last_error: &str,
    last_shed: bool,
) -> RouteOutcome {
    let status = if last_shed { "shed" } else { "failed" };
    let error = if attempts == 0 {
        "no live shards".to_string()
    } else if last_error.starts_with("all shards quarantined") {
        last_error.to_string()
    } else {
        format!("retries exhausted; last error: {last_error}")
    };
    RouteOutcome {
        name: req.name.clone(),
        status: status.to_string(),
        line: classified_line(&req.name, status, &error, attempts),
        shard: None,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const MP: &str = "PTX MP\n{ x = 0; flag = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | ld.weak r0, flag ;\n\
st.weak flag, 1 | ld.weak r1, x ;\n\
exists (P1:r0 == 1 /\\ P1:r1 == 0)";

    const SB: &str = "PTX SB\n{ x = 0; y = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | st.weak y, 1 ;\n\
ld.weak r0, y | ld.weak r1, x ;\n\
exists (P0:r0 == 0 /\\ P1:r1 == 0)";

    fn req(name: &str, source: &str) -> RouteRequest {
        RouteRequest {
            name: name.to_string(),
            source: source.to_string(),
            model: None,
            bound: 2,
            engine: "sat".to_string(),
            timeout_ms: None,
            faults: None,
        }
    }

    /// A fake shard: answers every verify with a canned `done` verdict
    /// whose `test` field is the request id, counting requests served,
    /// after an optional per-response delay.
    fn fake_shard_delayed(
        served: Arc<AtomicU64>,
        delay_ms: u64,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let served = Arc::clone(&served);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        let Ok(req) = Json::parse(line.trim_end()) else {
                            break;
                        };
                        let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
                        if delay_ms > 0 {
                            std::thread::sleep(Duration::from_millis(delay_ms));
                        }
                        served.fetch_add(1, Ordering::Relaxed);
                        let resp = Json::Obj(vec![
                            ("id".into(), Json::count(id)),
                            ("status".into(), Json::str("done")),
                            (
                                "verdict".into(),
                                Json::Obj(vec![("test".into(), Json::count(id))]),
                            ),
                        ]);
                        if writeln!(writer, "{resp}").is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    fn fake_shard(served: Arc<AtomicU64>) -> (String, std::thread::JoinHandle<()>) {
        fake_shard_delayed(served, 0)
    }

    /// A shard that accepts connections and immediately closes them.
    fn dead_shard() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                drop(conn);
            }
        });
        addr
    }

    /// A shard that reads the request and never answers.
    fn stalled_shard() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                held.push(stream); // keep the socket open, say nothing
            }
        });
        addr
    }

    /// A shard that answers `status:"shed"` to everything.
    fn shedding_shard() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        let Ok(req) = Json::parse(line.trim_end()) else {
                            break;
                        };
                        let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
                        let resp = Json::Obj(vec![
                            ("id".into(), Json::count(id)),
                            ("status".into(), Json::str("shed")),
                            ("error".into(), Json::str("overloaded")),
                        ]);
                        if writeln!(writer, "{resp}").is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    /// A shard that kills its first `kill_first` connections, then
    /// serves like [`fake_shard`] — the half-open readmission target.
    fn flaky_shard(kill_first: u64, served: Arc<AtomicU64>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut seen = 0u64;
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                seen += 1;
                if seen <= kill_first {
                    drop(stream);
                    continue;
                }
                let served = Arc::clone(&served);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        let Ok(req) = Json::parse(line.trim_end()) else {
                            break;
                        };
                        let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
                        served.fetch_add(1, Ordering::Relaxed);
                        let resp = Json::Obj(vec![
                            ("id".into(), Json::count(id)),
                            ("status".into(), Json::str("done")),
                            (
                                "verdict".into(),
                                Json::Obj(vec![("test".into(), Json::count(id))]),
                            ),
                        ]);
                        if writeln!(writer, "{resp}").is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn merges_in_input_order_regardless_of_shard() {
        let served = Arc::new(AtomicU64::new(0));
        let (addr, _h) = fake_shard(Arc::clone(&served));
        let reqs = vec![req("mp", MP), req("sb", SB), req("mp2", MP)];
        let report = route(&reqs, &[addr], &RoutePolicy::default());
        assert!(report.all_done());
        // The fake answers with the request index as the verdict test
        // field, so input order is directly observable.
        assert_eq!(
            report.merged(),
            "{\"test\":0}\n{\"test\":1}\n{\"test\":2}\n"
        );
        assert_eq!(served.load(Ordering::Relaxed), 3);
        assert_eq!(report.hedge, HedgeStats::default());
    }

    #[test]
    fn identical_requests_share_a_shard_and_distinct_spread() {
        let d_mp = routing_digest(&req("a", MP), 1);
        let d_mp2 = routing_digest(&req("b", MP), 1);
        let d_sb = routing_digest(&req("c", SB), 1);
        assert_eq!(d_mp, d_mp2, "same content, same digest, same shard");
        assert_ne!(d_mp, d_sb);
        assert_eq!(
            home_shard(d_mp, 4, DEFAULT_VNODES),
            home_shard(d_mp2, 4, DEFAULT_VNODES)
        );
    }

    /// Picks `per_home` requests homed on each of the two shards by
    /// varying the bound (the digest moves with it).
    fn requests_covering_two_shards(per_home: usize) -> Vec<RouteRequest> {
        let mut reqs: Vec<RouteRequest> = Vec::new();
        let mut homes = [0usize; 2];
        for b in 1u32..64 {
            let mut r = req(&format!("t{b}"), MP);
            r.bound = b;
            let home = home_shard(routing_digest(&r, 1), 2, DEFAULT_VNODES);
            if homes[home] < per_home {
                homes[home] += 1;
                reqs.push(r);
            }
            if reqs.len() == per_home * 2 {
                break;
            }
        }
        assert_eq!(
            homes,
            [per_home, per_home],
            "both shards must receive home traffic"
        );
        reqs
    }

    #[test]
    fn dead_shard_fails_over_to_the_ring_successor() {
        let served = Arc::new(AtomicU64::new(0));
        let (alive, _h) = fake_shard(Arc::clone(&served));
        let dead = dead_shard();
        let reqs = requests_covering_two_shards(3);
        let report = route(&reqs, &[dead, alive], &RoutePolicy::default());
        assert!(report.all_done(), "all answered by the survivor");
        assert_eq!(served.load(Ordering::Relaxed), 6);
        assert!(report.shards[0].died);
        assert!(!report.shards[1].died);
    }

    #[test]
    fn all_shards_dead_answers_classified_failed() {
        let reqs = vec![req("mp", MP)];
        let report = route(
            &reqs,
            &[dead_shard(), dead_shard()],
            &RoutePolicy {
                backoff_ms: 1,
                ..RoutePolicy::default()
            },
        );
        assert_eq!(report.results.len(), 1);
        let r = &report.results[0];
        assert_eq!(r.status, "failed");
        assert!(r.attempts >= 1);
        let line = Json::parse(&r.line).unwrap();
        assert_eq!(line.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(line.get("class").and_then(Json::as_str), Some("cluster"));
        assert_eq!(line.get("test").and_then(Json::as_str), Some("mp"));
    }

    #[test]
    fn unreachable_address_counts_as_dead() {
        // Nothing listens on this port (bind-then-drop frees it).
        let free = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let served = Arc::new(AtomicU64::new(0));
        let (alive, _h) = fake_shard(Arc::clone(&served));
        let reqs: Vec<RouteRequest> = (0..4).map(|i| req(&format!("t{i}"), SB)).collect();
        let report = route(&reqs, &[free, alive], &RoutePolicy::default());
        assert!(report.all_done());
        assert_eq!(served.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deadline_classifies_a_stalled_shard_as_failed_timeout() {
        let stalled = stalled_shard();
        let reqs = vec![req("mp", MP)];
        let report = route(
            &reqs,
            &[stalled],
            &RoutePolicy {
                deadline_ms: Some(250),
                backoff_ms: 1,
                max_attempts: 5,
                ..RoutePolicy::default()
            },
        );
        let r = &report.results[0];
        assert_eq!(r.status, "failed");
        assert!(r.attempts >= 1, "the stalled attempt is recorded");
        let line = Json::parse(&r.line).unwrap();
        assert_eq!(line.get("status").and_then(Json::as_str), Some("failed"));
        assert!(
            line.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .starts_with("timeout: deadline"),
            "line: {}",
            r.line
        );
        assert_eq!(
            line.get("attempts").and_then(Json::as_u64),
            Some(u64::from(r.attempts))
        );
    }

    #[test]
    fn every_shard_shedding_classifies_shed() {
        let reqs = vec![req("mp", MP)];
        let report = route(
            &reqs,
            &[shedding_shard()],
            &RoutePolicy {
                backoff_ms: 1,
                max_attempts: 2,
                ..RoutePolicy::default()
            },
        );
        let r = &report.results[0];
        assert_eq!(r.status, "shed");
        assert_eq!(r.attempts, 2);
        let line = Json::parse(&r.line).unwrap();
        assert_eq!(line.get("status").and_then(Json::as_str), Some("shed"));
        assert_eq!(line.get("class").and_then(Json::as_str), Some("cluster"));
        // A shedding shard is alive: its breaker must never have
        // tripped.
        assert!(!report.shards[0].died);
        assert_eq!(report.shards[0].trips, 0);
    }

    #[test]
    fn hedge_fires_wins_and_duplicates_agree() {
        let slow_served = Arc::new(AtomicU64::new(0));
        let fast_served = Arc::new(AtomicU64::new(0));
        let (slow, _h1) = fake_shard_delayed(Arc::clone(&slow_served), 400);
        let (fast, _h2) = fake_shard(Arc::clone(&fast_served));
        // Only requests homed on the slow shard (index 0) are hedged.
        let reqs: Vec<RouteRequest> = requests_covering_two_shards(3)
            .into_iter()
            .filter(|r| home_shard(routing_digest(r, 1), 2, DEFAULT_VNODES) == 0)
            .collect();
        assert_eq!(reqs.len(), 3);
        let report = route(
            &reqs,
            &[slow, fast],
            &RoutePolicy {
                hedge_ms: Some(40),
                ..RoutePolicy::default()
            },
        );
        assert!(report.all_done());
        assert_eq!(report.hedge.fired, 3, "every slow-homed request hedged");
        assert_eq!(report.hedge.wins, 3, "the fast successor always won");
        assert_eq!(
            report.hedge.duplicates, 3,
            "the slow losers still answered within the wait window"
        );
        assert_eq!(report.hedge.mismatches, 0);
        assert_eq!(fast_served.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn breaker_quarantines_then_half_open_probe_readmits() {
        let served = Arc::new(AtomicU64::new(0));
        let addr = flaky_shard(2, Arc::clone(&served));
        let reqs = vec![req("mp", MP)];
        let report = route(
            &reqs,
            &[addr],
            &RoutePolicy {
                max_attempts: 10,
                backoff_ms: 5,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown_ms: 60,
                },
                ..RoutePolicy::default()
            },
        );
        assert!(report.all_done(), "answered after readmission");
        assert_eq!(report.results[0].attempts, 3);
        let s = &report.shards[0];
        assert!(s.died);
        assert_eq!(s.trips, 1, "two kills tripped the breaker once");
        assert_eq!(s.readmitted, 1, "the half-open probe readmitted it");
        assert_eq!(served.load(Ordering::Relaxed), 1);
    }
}
