//! Sharded routing: fan a suite over N serve instances, merge
//! deterministically, survive node death.
//!
//! Requests are assigned to shards by digest hash ([`shard_of`]), so
//! identical queries always land on the same node and its result cache
//! — the fleet-level analogue of the per-daemon content addressing.
//! Each round groups the unanswered requests by their current shard and
//! drives every shard from its own thread (send one, await one; the
//! protocol's out-of-order pipelining is deliberately unused so a
//! transport error can be attributed to exactly one request).
//!
//! Failure semantics (DESIGN.md §16):
//!
//! * `done` / `unknown` / `error` responses are *answers* — final.
//! * `rejected` (backpressure) and `failed` (the node's retry policy
//!   already gave up) responses, and any transport error, are
//!   *node-level* trouble: the request moves to the next surviving
//!   shard and tries again after a backoff.
//! * a shard whose connection cannot be established (or dies mid-read)
//!   is marked dead and skipped by reassignment; it is probed again on
//!   later rounds (a restarted node rejoins automatically).
//! * only when the cluster-wide attempt budget is exhausted — or every
//!   shard is dead — does a request answer `status:"failed"`.
//!
//! A per-request fault plan (the `faults` field) is a *node-local*
//! injection: it rides the first attempt only and is stripped on
//! failover, so an injected node death cannot chase the request across
//! the fleet it was meant to test.
//!
//! The merged output is one line per request, *in input order*, each
//! carrying only order-independent fields (no ids, no timings) — so a
//! 2-shard run with a mid-run node death is byte-identical to a
//! single-node run of the same suite.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::digest::source_digest;
use crate::json::Json;

/// One request of a routed suite.
#[derive(Debug, Clone)]
pub struct RouteRequest {
    /// Display name (the catalog test name), used in failure lines.
    pub name: String,
    /// Litmus source.
    pub source: String,
    /// Model name; `None` uses the dialect default.
    pub model: Option<String>,
    pub bound: u32,
    /// Engine spelling (`sat`, `enumerate`, `alloy`, `dpor`).
    pub engine: String,
    pub timeout_ms: Option<u64>,
    /// Node-local fault injection; not propagated on failover.
    pub faults: Option<String>,
}

/// Cluster-wide retry policy.
#[derive(Debug, Clone, Copy)]
pub struct RoutePolicy {
    /// Total attempts per request across all shards; `0` means
    /// `2 × shards`.
    pub max_attempts: u32,
    /// Sleep between retry rounds.
    pub backoff_ms: u64,
    /// Protocol version stamped on every request.
    pub proto: u32,
}

impl Default for RoutePolicy {
    fn default() -> RoutePolicy {
        RoutePolicy {
            max_attempts: 0,
            backoff_ms: 25,
            proto: 1,
        }
    }
}

/// Per-shard accounting.
#[derive(Debug, Clone)]
pub struct ShardStats {
    pub addr: String,
    /// Requests sent (attempts, not unique requests).
    pub sent: u64,
    /// Final answers produced.
    pub answered: u64,
    /// Whether the shard was marked dead at any point.
    pub died: bool,
}

/// The final state of one routed request.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    pub name: String,
    /// `done`, `unknown`, `error`, or `failed`.
    pub status: String,
    /// The merged output line (order-independent fields only).
    pub line: String,
    /// Shard index that produced the final answer, if any.
    pub shard: Option<usize>,
    pub attempts: u32,
}

/// Everything [`route`] produces.
#[derive(Debug)]
pub struct RouteReport {
    /// One outcome per request, in input order.
    pub results: Vec<RouteOutcome>,
    pub shards: Vec<ShardStats>,
}

impl RouteReport {
    /// The deterministic merge: one line per request in input order,
    /// with a trailing newline.
    pub fn merged(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.line);
            out.push('\n');
        }
        out
    }

    /// Whether every request reached a verdict (`done`).
    pub fn all_done(&self) -> bool {
        self.results.iter().all(|r| r.status == "done")
    }
}

/// Initial shard assignment: stable digest hash.
pub fn shard_of(digest: u128, shards: usize) -> usize {
    (digest % shards.max(1) as u128) as usize
}

/// Routing digest for a request: the canonical content digest where the
/// request parses, an FNV fallback over the raw source where it does
/// not (the server will answer `error`; the request still needs *a*
/// home).
fn routing_digest(req: &RouteRequest, proto: u32) -> u128 {
    source_digest(
        &req.source,
        req.model.as_deref(),
        req.bound,
        "all",
        &req.engine,
        proto,
    )
    .unwrap_or_else(|_| {
        let mut h: u128 = 0xcbf2_9ce4_8422_2325;
        for b in req.source.bytes() {
            h ^= u128::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    })
}

/// What one attempt on one shard produced.
enum Attempt {
    /// A final answer (`done`/`unknown`/`error`).
    Final(Json),
    /// A retryable answer (`rejected`/`failed`).
    Retry(String),
    /// The connection failed or died: shard presumed dead.
    Transport(String),
}

/// One shard's connection for a round.
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ShardConn {
    fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<ShardConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        Ok(ShardConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request, awaits its response (matched by id).
    fn roundtrip(&mut self, id: u64, req: &Json) -> Result<Json, String> {
        writeln!(self.writer, "{req}").map_err(|e| format!("write: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-request".to_string());
            }
            let resp = Json::parse(line.trim_end()).map_err(|e| format!("bad response: {e}"))?;
            if resp.get("id").and_then(Json::as_u64) == Some(id) {
                return Ok(resp);
            }
            // Not ours (a stale pipelined answer): keep reading.
        }
    }
}

fn request_json(req: &RouteRequest, id: u64, proto: u32, with_faults: bool) -> Json {
    let mut fields = vec![
        ("id".into(), Json::count(id)),
        ("verb".into(), Json::str("verify")),
        ("proto".into(), Json::count(u64::from(proto))),
        ("source".into(), Json::str(&req.source)),
        ("bound".into(), Json::count(u64::from(req.bound))),
        ("engine".into(), Json::str(&req.engine)),
    ];
    if let Some(m) = &req.model {
        fields.push(("model".into(), Json::str(m)));
    }
    if let Some(t) = req.timeout_ms {
        fields.push(("timeout_ms".into(), Json::count(t)));
    }
    if with_faults {
        if let Some(f) = &req.faults {
            fields.push(("faults".into(), Json::str(f)));
        }
    }
    Json::Obj(fields)
}

/// Reduces a response to the order-independent merged line.
fn merged_line(name: &str, resp: &Json) -> (String, String) {
    match resp.get("status").and_then(Json::as_str) {
        Some("done") => {
            let verdict = resp.get("verdict").cloned().unwrap_or(Json::Null);
            ("done".to_string(), verdict.to_string())
        }
        Some("unknown") => {
            let reason = resp.get("reason").and_then(Json::as_str).unwrap_or("");
            let line = Json::Obj(vec![
                ("test".into(), Json::str(name)),
                ("status".into(), Json::str("unknown")),
                ("reason".into(), Json::str(reason)),
            ]);
            ("unknown".to_string(), line.to_string())
        }
        _ => {
            let error = resp.get("error").and_then(Json::as_str).unwrap_or("");
            let line = Json::Obj(vec![
                ("test".into(), Json::str(name)),
                ("status".into(), Json::str("error")),
                ("error".into(), Json::str(error)),
            ]);
            ("error".to_string(), line.to_string())
        }
    }
}

fn failed_line(name: &str, error: &str, attempts: u32) -> String {
    Json::Obj(vec![
        ("test".into(), Json::str(name)),
        ("status".into(), Json::str("failed")),
        ("class".into(), Json::str("cluster")),
        ("error".into(), Json::str(error)),
        ("attempts".into(), Json::count(u64::from(attempts))),
    ])
    .to_string()
}

/// Tracks one request across rounds.
struct Pending {
    idx: usize,
    digest: u128,
    attempts: u32,
    last_error: String,
}

/// Fans `requests` over `shards` (serve addresses) and merges. See the
/// module docs for the failure semantics. Panics on an empty shard
/// list.
pub fn route(requests: &[RouteRequest], shards: &[String], policy: &RoutePolicy) -> RouteReport {
    assert!(!shards.is_empty(), "route needs at least one shard");
    let max_attempts = if policy.max_attempts == 0 {
        (shards.len() as u32) * 2
    } else {
        policy.max_attempts
    };
    let read_timeout = None; // per-request deadlines belong to the server
    let mut stats: Vec<ShardStats> = shards
        .iter()
        .map(|addr| ShardStats {
            addr: addr.clone(),
            sent: 0,
            answered: 0,
            died: false,
        })
        .collect();
    let mut results: Vec<Option<RouteOutcome>> = (0..requests.len()).map(|_| None).collect();
    let mut pending: Vec<Pending> = requests
        .iter()
        .enumerate()
        .map(|(idx, req)| Pending {
            idx,
            digest: routing_digest(req, policy.proto),
            attempts: 0,
            last_error: String::new(),
        })
        .collect();
    // `dead[i]` is sticky within a round and probed again on the next
    // one (a restarted node rejoins).
    let mut dead: Vec<bool> = vec![false; shards.len()];
    let mut round = 0u32;
    while !pending.is_empty() {
        if round > 0 && policy.backoff_ms > 0 {
            std::thread::sleep(Duration::from_millis(policy.backoff_ms));
        }
        round += 1;
        // Assignment: attempt k of a request targets the k-th shard
        // clockwise from its home, skipping currently-dead shards.
        let mut batches: Vec<Vec<usize>> = vec![Vec::new(); shards.len()]; // pending indices
        let mut exhausted: Vec<usize> = Vec::new();
        let alive: Vec<usize> = (0..shards.len()).filter(|&i| !dead[i]).collect();
        for (p_i, p) in pending.iter().enumerate() {
            if p.attempts >= max_attempts || alive.is_empty() {
                exhausted.push(p_i);
                continue;
            }
            let home = shard_of(p.digest, shards.len());
            let step = p.attempts as usize;
            // Walk clockwise from home over the *alive* shards.
            let start = alive.iter().position(|&s| s >= home).unwrap_or(0);
            let shard = alive[(start + step) % alive.len()];
            batches[shard].push(p_i);
        }
        for p_i in exhausted.into_iter().rev() {
            let p = pending.remove(p_i);
            let req = &requests[p.idx];
            let error = if p.attempts == 0 {
                "no live shards".to_string()
            } else {
                format!("retries exhausted; last error: {}", p.last_error)
            };
            results[p.idx] = Some(RouteOutcome {
                name: req.name.clone(),
                status: "failed".to_string(),
                line: failed_line(&req.name, &error, p.attempts),
                shard: None,
                attempts: p.attempts,
            });
        }
        if pending.is_empty() {
            break;
        }
        // Drive every shard's batch from its own thread.
        let mut outcomes: Vec<(usize, usize, Attempt)> = Vec::new(); // (pending idx, shard, attempt)
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, batch) in batches.iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let addr = shards[shard].clone();
                let jobs: Vec<(usize, u64, Json)> = batch
                    .iter()
                    .map(|&p_i| {
                        let p = &pending[p_i];
                        let req = &requests[p.idx];
                        let id = p.idx as u64;
                        (
                            p_i,
                            id,
                            request_json(req, id, policy.proto, p.attempts == 0),
                        )
                    })
                    .collect();
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut conn = match ShardConn::connect(&addr, read_timeout) {
                        Ok(c) => Some(c),
                        Err(e) => {
                            for (p_i, _, _) in &jobs {
                                out.push((
                                    *p_i,
                                    shard,
                                    Attempt::Transport(format!("connect: {e}")),
                                ));
                            }
                            return out;
                        }
                    };
                    for (p_i, id, req) in &jobs {
                        match conn.as_mut() {
                            None => {
                                out.push((*p_i, shard, Attempt::Transport("shard dead".into())));
                            }
                            Some(c) => match c.roundtrip(*id, req) {
                                Ok(resp) => {
                                    let status =
                                        resp.get("status").and_then(Json::as_str).unwrap_or("");
                                    match status {
                                        "rejected" | "failed" => {
                                            let why = resp
                                                .get("error")
                                                .and_then(Json::as_str)
                                                .unwrap_or(status)
                                                .to_string();
                                            out.push((*p_i, shard, Attempt::Retry(why)));
                                        }
                                        _ => out.push((*p_i, shard, Attempt::Final(resp))),
                                    }
                                }
                                Err(e) => {
                                    // The connection is unusable; every
                                    // later job on it fails over too.
                                    out.push((*p_i, shard, Attempt::Transport(e)));
                                    conn = None;
                                }
                            },
                        }
                    }
                    out
                }));
            }
            for h in handles {
                outcomes.extend(h.join().expect("shard thread panicked"));
            }
        });
        // Apply outcomes; remove answered requests from `pending`.
        let mut answered: Vec<usize> = Vec::new();
        for (p_i, shard, attempt) in outcomes {
            pending[p_i].attempts += 1;
            stats[shard].sent += 1;
            match attempt {
                Attempt::Final(resp) => {
                    let p = &pending[p_i];
                    let req = &requests[p.idx];
                    let (status, line) = merged_line(&req.name, &resp);
                    results[p.idx] = Some(RouteOutcome {
                        name: req.name.clone(),
                        status,
                        line,
                        shard: Some(shard),
                        attempts: p.attempts,
                    });
                    stats[shard].answered += 1;
                    answered.push(p_i);
                }
                Attempt::Retry(why) => {
                    pending[p_i].last_error = format!("{}: {why}", shards[shard]);
                }
                Attempt::Transport(why) => {
                    pending[p_i].last_error = format!("{}: {why}", shards[shard]);
                    dead[shard] = true;
                    stats[shard].died = true;
                }
            }
        }
        answered.sort_unstable();
        for p_i in answered.into_iter().rev() {
            pending.remove(p_i);
        }
        // Probe dead shards again next round only if someone still
        // needs them (all alive shards might be the dead one's
        // neighbours); a dead shard that stays down just keeps failing
        // to connect, which is cheap.
        if pending.iter().all(|p| p.attempts >= max_attempts) && dead.iter().all(|&d| d) {
            // Every shard dead and everyone exhausted: next loop
            // iteration routes everything to `exhausted`.
        }
    }
    RouteReport {
        results: results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect(),
        shards: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const MP: &str = "PTX MP\n{ x = 0; flag = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | ld.weak r0, flag ;\n\
st.weak flag, 1 | ld.weak r1, x ;\n\
exists (P1:r0 == 1 /\\ P1:r1 == 0)";

    const SB: &str = "PTX SB\n{ x = 0; y = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | st.weak y, 1 ;\n\
ld.weak r0, y | ld.weak r1, x ;\n\
exists (P0:r0 == 0 /\\ P1:r1 == 0)";

    fn req(name: &str, source: &str) -> RouteRequest {
        RouteRequest {
            name: name.to_string(),
            source: source.to_string(),
            model: None,
            bound: 2,
            engine: "sat".to_string(),
            timeout_ms: None,
            faults: None,
        }
    }

    /// A fake shard: answers every verify with a canned `done` verdict
    /// whose `test` field is the request id, counting requests served.
    fn fake_shard(served: Arc<AtomicU64>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let served = Arc::clone(&served);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        let Ok(req) = Json::parse(line.trim_end()) else {
                            break;
                        };
                        let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
                        served.fetch_add(1, Ordering::Relaxed);
                        let resp = Json::Obj(vec![
                            ("id".into(), Json::count(id)),
                            ("status".into(), Json::str("done")),
                            (
                                "verdict".into(),
                                Json::Obj(vec![("test".into(), Json::count(id))]),
                            ),
                        ]);
                        if writeln!(writer, "{resp}").is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    /// A shard that accepts connections and immediately closes them.
    fn dead_shard() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                drop(conn);
            }
        });
        addr
    }

    #[test]
    fn merges_in_input_order_regardless_of_shard() {
        let served = Arc::new(AtomicU64::new(0));
        let (addr, _h) = fake_shard(Arc::clone(&served));
        let reqs = vec![req("mp", MP), req("sb", SB), req("mp2", MP)];
        let report = route(&reqs, &[addr], &RoutePolicy::default());
        assert!(report.all_done());
        // The fake answers with the request index as the verdict test
        // field, so input order is directly observable.
        assert_eq!(
            report.merged(),
            "{\"test\":0}\n{\"test\":1}\n{\"test\":2}\n"
        );
        assert_eq!(served.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn identical_requests_share_a_shard_and_distinct_spread() {
        let d_mp = routing_digest(&req("a", MP), 1);
        let d_mp2 = routing_digest(&req("b", MP), 1);
        let d_sb = routing_digest(&req("c", SB), 1);
        assert_eq!(d_mp, d_mp2, "same content, same digest, same shard");
        assert_ne!(d_mp, d_sb);
    }

    #[test]
    fn dead_shard_fails_over_to_the_survivor() {
        let served = Arc::new(AtomicU64::new(0));
        let (alive, _h) = fake_shard(Arc::clone(&served));
        let dead = dead_shard();
        // Vary the bound so digests differ, and keep picking until both
        // shards provably get home assignments — the test must exercise
        // the dead shard no matter how the hash falls.
        let mut reqs: Vec<RouteRequest> = Vec::new();
        let mut homes = [0usize; 2];
        for b in 1u32..64 {
            let mut r = req(&format!("t{b}"), MP);
            r.bound = b;
            let home = shard_of(routing_digest(&r, 1), 2);
            if homes[home] < 3 {
                homes[home] += 1;
                reqs.push(r);
            }
            if reqs.len() == 6 {
                break;
            }
        }
        assert_eq!(homes, [3, 3], "both shards must receive home traffic");
        let report = route(&reqs, &[dead, alive], &RoutePolicy::default());
        assert!(report.all_done(), "all answered by the survivor");
        assert_eq!(served.load(Ordering::Relaxed), 6);
        assert!(report.shards[0].died);
        assert!(!report.shards[1].died);
    }

    #[test]
    fn all_shards_dead_answers_classified_failed() {
        let reqs = vec![req("mp", MP)];
        let report = route(
            &reqs,
            &[dead_shard(), dead_shard()],
            &RoutePolicy {
                backoff_ms: 1,
                ..RoutePolicy::default()
            },
        );
        assert_eq!(report.results.len(), 1);
        let r = &report.results[0];
        assert_eq!(r.status, "failed");
        assert!(r.attempts >= 1);
        let line = Json::parse(&r.line).unwrap();
        assert_eq!(line.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(line.get("class").and_then(Json::as_str), Some("cluster"));
        assert_eq!(line.get("test").and_then(Json::as_str), Some("mp"));
    }

    #[test]
    fn unreachable_address_counts_as_dead() {
        // Nothing listens on this port (bind-then-drop frees it).
        let free = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let served = Arc::new(AtomicU64::new(0));
        let (alive, _h) = fake_shard(Arc::clone(&served));
        let reqs: Vec<RouteRequest> = (0..4).map(|i| req(&format!("t{i}"), SB)).collect();
        let report = route(&reqs, &[free, alive], &RoutePolicy::default());
        assert!(report.all_done());
        assert_eq!(served.load(Ordering::Relaxed), 4);
    }
}
