//! Consistent-hash ring with virtual nodes: the router's shard map.
//!
//! The old assignment (`digest % shards`) reshuffles almost every
//! digest when the fleet grows or shrinks by one node, which defeats
//! the per-shard result caches exactly when the fleet is unhealthy.
//! The ring fixes that: each shard owns `vnodes` pseudo-random points
//! on a `u64` circle (FNV-1a over `"{id}#{v}"`), a digest belongs to
//! the first point at or clockwise-after its own position, and adding
//! or removing a shard moves only the digests whose owning point
//! belonged to that shard — everything else keeps its home and its
//! warm cache (`tests/ring_props.rs` checks both properties).
//!
//! Shards are identified by a caller-chosen string id and addressed by
//! a dense index that stays stable across removals, so the router can
//! keep per-shard state (stats, circuit breakers) in flat vectors.

/// Virtual nodes per shard. 128 points keeps the max/ideal load ratio
/// under ~2× for small fleets (the bound `tests/ring_props.rs` locks).
pub const DEFAULT_VNODES: usize = 128;

/// A consistent-hash ring. See the module docs.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted by position: `(position, shard index)`.
    points: Vec<(u64, usize)>,
    /// Shard ids by index; `None` marks a removed shard (indices of the
    /// survivors never shift).
    ids: Vec<Option<String>>,
    vnodes: usize,
}

impl HashRing {
    /// An empty ring placing `vnodes` points per shard (0 is clamped
    /// to 1).
    pub fn new(vnodes: usize) -> HashRing {
        HashRing {
            points: Vec::new(),
            ids: Vec::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// The canonical fleet ring: shards named `s0..s{n-1}`, so a digest
    /// homes identically in the router and in any test predicting it.
    pub fn with_shards(n: usize, vnodes: usize) -> HashRing {
        let mut ring = HashRing::new(vnodes);
        for i in 0..n {
            ring.add(&format!("s{i}"));
        }
        ring
    }

    /// Adds a shard, returning its index. Re-adding a removed id
    /// revives it under a fresh index; adding a live id panics (two
    /// shards may not share points).
    pub fn add(&mut self, id: &str) -> usize {
        assert!(
            !self.ids.iter().any(|i| i.as_deref() == Some(id)),
            "shard id `{id}` already on the ring"
        );
        let idx = self.ids.len();
        self.ids.push(Some(id.to_string()));
        for v in 0..self.vnodes {
            self.points.push((vnode_position(id, v), idx));
        }
        self.points.sort_unstable();
        idx
    }

    /// Removes a shard by id; only digests it owned change hands.
    /// Returns `false` for an unknown id.
    pub fn remove(&mut self, id: &str) -> bool {
        let Some(idx) = self.ids.iter().position(|i| i.as_deref() == Some(id)) else {
            return false;
        };
        self.ids[idx] = None;
        self.points.retain(|&(_, s)| s != idx);
        true
    }

    /// Live shards on the ring.
    pub fn len(&self) -> usize {
        self.ids.iter().filter(|i| i.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The id of shard `idx`, if it is still live.
    pub fn id(&self, idx: usize) -> Option<&str> {
        self.ids.get(idx).and_then(|i| i.as_deref())
    }

    /// The shard owning `digest`: the first point clockwise from the
    /// digest's ring position. `None` on an empty ring.
    pub fn owner(&self, digest: u128) -> Option<usize> {
        let key = digest_position(digest);
        let at = self.points.partition_point(|&(pos, _)| pos < key);
        self.points
            .get(at)
            .or_else(|| self.points.first())
            .map(|&(_, shard)| shard)
    }

    /// Every live shard in clockwise preference order for `digest`:
    /// the owner first, then each distinct shard as its first point is
    /// passed. This is the failover (and hedging) order.
    pub fn successors(&self, digest: u128) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        if self.points.is_empty() {
            return order;
        }
        let key = digest_position(digest);
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.len() {
                    break;
                }
            }
        }
        order
    }
}

/// Ring position of one virtual node: FNV-1a over `"{id}#{v}"`.
fn vnode_position(id: &str, vnode: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(id.as_bytes());
    eat(b"#");
    eat(vnode.to_string().as_bytes());
    // Finalize (splitmix64) so ids differing in one byte still spread.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Ring position of a request digest (folds the 128-bit content digest
/// onto the 64-bit circle).
fn digest_position(digest: u128) -> u64 {
    ((digest >> 64) as u64) ^ (digest as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_total() {
        let ring = HashRing::with_shards(3, 64);
        for d in 0..100u128 {
            let a = ring.owner(d * 0x9e37_79b9).unwrap();
            let b = ring.owner(d * 0x9e37_79b9).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn successors_cover_every_shard_once() {
        let ring = HashRing::with_shards(4, 32);
        for d in 0..50u128 {
            let succ = ring.successors(d << 64 | d);
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert_eq!(succ[0], ring.owner(d << 64 | d).unwrap());
        }
    }

    #[test]
    fn removal_moves_only_the_removed_shards_digests() {
        let mut ring = HashRing::with_shards(4, 64);
        let digests: Vec<u128> = (0..500u128)
            .map(|i| i.wrapping_mul(0x1234_5678_9abc))
            .collect();
        let before: Vec<usize> = digests.iter().map(|&d| ring.owner(d).unwrap()).collect();
        assert!(ring.remove("s2"));
        assert_eq!(ring.len(), 3);
        for (&d, &was) in digests.iter().zip(&before) {
            let now = ring.owner(d).unwrap();
            if was != 2 {
                assert_eq!(now, was, "digest {d:x} moved although its owner survived");
            } else {
                assert_ne!(now, 2);
            }
        }
    }

    #[test]
    fn addition_only_steals_for_the_new_shard() {
        let mut ring = HashRing::with_shards(3, 64);
        let digests: Vec<u128> = (0..500u128)
            .map(|i| i.wrapping_mul(0x0fed_cba9_8765))
            .collect();
        let before: Vec<usize> = digests.iter().map(|&d| ring.owner(d).unwrap()).collect();
        let idx = ring.add("s3");
        for (&d, &was) in digests.iter().zip(&before) {
            let now = ring.owner(d).unwrap();
            assert!(
                now == was || now == idx,
                "digest {d:x} moved to a pre-existing shard"
            );
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
        assert!(ring.successors(42).is_empty());
    }

    #[test]
    fn duplicate_id_panics() {
        let mut ring = HashRing::with_shards(2, 8);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ring.add("s1"))).is_err());
    }
}
