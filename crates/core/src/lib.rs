//! gpumc — unified analysis of GPU consistency models.
//!
//! A Rust reproduction of the verification pipeline of *"Towards Unified
//! Analysis of GPU Consistency"* (ASPLOS 2024): a bounded model checker
//! for GPU programs under the NVIDIA PTX (v6.0 / v7.5) and Khronos
//! Vulkan memory consistency models, with litmus-test and SPIR-V
//! front-ends.
//!
//! The central type is [`Verifier`]: configure a `.cat` consistency
//! model, an engine, and an unrolling bound, then check safety
//! (reachability of the test's `exists`/`forall` condition), liveness
//! (stuck spinloops, §6.4 of the paper), and data-race freedom (the
//! Vulkan model's flagged `dr` relation).
//!
//! Three engines implement every query and cross-validate each other:
//!
//! * [`EngineKind::Sat`] — the Dartagnan-style SAT encoding
//!   (`gpumc-encode`), scaling to hundreds of events;
//! * [`EngineKind::Enumerate`] — the Alloy-style explicit enumeration
//!   (`gpumc-exec`), exact but exponential, and additionally restricted
//!   to straight-line programs when mimicking the paper's baseline;
//! * [`EngineKind::Dpor`] — stateless DPOR exploration, exact like the
//!   enumerator but pruning redundant interleavings, so it handles
//!   branching programs and larger traces.
//!
//! # Quickstart
//!
//! ```
//! use gpumc::{Verifier, EngineKind};
//!
//! let src = r#"
//! PTX MP
//! { x = 0; flag = 0; }
//! P0@cta 0,gpu 0          | P1@cta 1,gpu 0 ;
//! st.relaxed.gpu x, 1     | ld.acquire.gpu r0, flag ;
//! st.release.gpu flag, 1  | ld.relaxed.gpu r1, x ;
//! exists (P1:r0 == 1 /\ P1:r1 == 0)
//! "#;
//! let program = gpumc::parse_litmus(src)?;
//! let verifier = Verifier::new(gpumc_models::ptx75());
//! let outcome = verifier.check_assertion(&program)?;
//! assert!(!outcome.reachable, "release/acquire forbids the stale read");
//! assert!(outcome.satisfied_expectation == Some(false),
//!         "the exists-condition is unsatisfiable");
//! # Ok::<(), gpumc::VerifyError>(())
//! ```

use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gpumc_cat::CatModel;
use gpumc_encode::{encode, EncodeOptions};
use gpumc_exec::{enumerate, EnumerateOptions, Execution};
use gpumc_ir::{compile, unroll, Assertion, Condition, EventGraph, Program};

pub mod suite;

pub use suite::{
    effective_jobs, parallel_map_ordered, SuiteConfig, SuiteReport, SuiteRunner, TestResult,
};

pub use gpumc_cat;
pub use gpumc_catalog;
pub use gpumc_encode;
pub use gpumc_exec;
/// The fault-injection registry (`gpumc-fault`), re-exported as
/// `gpumc::fault`. Inert unless a plan is installed — see
/// [`fault::install_global_from_env`] and the `GPUMC_FAULTS` variable.
pub use gpumc_fault as fault;
/// The fleet layer (`gpumc-fleet`), re-exported as `gpumc::fleet`:
/// content-addressed result digests and cache, the cost-aware
/// scheduler, and the shard router behind `gpumc route` (DESIGN.md
/// §16).
pub use gpumc_fleet as fleet;
pub use gpumc_ir;
pub use gpumc_litmus;
pub use gpumc_models;
pub use gpumc_sat;
pub use gpumc_spirv;

/// Parses a litmus test in either dialect (see `gpumc-litmus`).
///
/// # Errors
///
/// Returns a [`VerifyError::Parse`] describing the problem.
pub fn parse_litmus(source: &str) -> Result<Program, VerifyError> {
    gpumc_litmus::parse(source).map_err(|e| VerifyError::Parse(e.to_string()))
}

/// Revision counter for verdict-affecting verifier behavior. Bump this
/// whenever the encoder, a solver, an engine, or a model changes in a
/// way that could alter *any* verdict — it invalidates every persistent
/// result cache (see `gpumc::fleet::store`), which is the sound
/// default: a stale cached verdict is a wrong answer served fast.
pub const VERIFIER_REVISION: u32 = 1;

/// The fingerprint persistent result caches are keyed on: crate
/// version, [`VERIFIER_REVISION`], and the digest scheme version. Two
/// builds with equal fingerprints must produce identical verdicts for
/// identical digests.
pub fn verifier_fingerprint() -> String {
    format!(
        "gpumc={};rev={};scheme={}",
        env!("CARGO_PKG_VERSION"),
        VERIFIER_REVISION,
        fleet::digest::DIGEST_SCHEME_VERSION,
    )
}

/// Which verification engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// SAT-based bounded model checking (the Dartagnan pipeline).
    Sat,
    /// Explicit-state enumeration (the Alloy-style baseline). With
    /// `straight_line_only`, programs with control flow are rejected,
    /// mirroring the published prototypes' limitation.
    Enumerate {
        /// Reject programs with control flow, like the Alloy tools.
        straight_line_only: bool,
    },
    /// Stateless DPOR: incremental exploration with rf/co-aware pruning
    /// and sleep sets over SC fences (`gpumc_exec::dpor_explore`).
    /// Exact like [`EngineKind::Enumerate`], but scales further and
    /// accepts branching programs.
    Dpor,
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    /// Parses the engine names accepted by the CLI and the server:
    /// `sat`, `enumerate` (or `enum`), `alloy`, `dpor`.
    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "sat" => Ok(EngineKind::Sat),
            "enumerate" | "enum" => Ok(EngineKind::Enumerate {
                straight_line_only: false,
            }),
            "alloy" => Ok(EngineKind::Enumerate {
                straight_line_only: true,
            }),
            "dpor" => Ok(EngineKind::Dpor),
            other => Err(format!(
                "unknown engine `{other}` (expected sat, enumerate, alloy, or dpor)"
            )),
        }
    }
}

/// An error produced by the verifier.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Front-end failure.
    Parse(String),
    /// IR-level failure (unrolling, validation).
    Ir(String),
    /// The engine rejected the program or model.
    Unsupported(String),
    /// Resource exhaustion in the enumeration engine.
    TooComplex(String),
    /// The check was interrupted — conflict budget, cancellation, or a
    /// deadline — before reaching a verdict. Never a wrong answer, only
    /// a withheld one; retrying with more budget is sound.
    Unknown(String),
    /// Internal cross-validation failure (should never happen).
    Internal(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Parse(m) => write!(f, "parse error: {m}"),
            VerifyError::Ir(m) => write!(f, "ir error: {m}"),
            VerifyError::Unsupported(m) => write!(f, "unsupported: {m}"),
            VerifyError::TooComplex(m) => write!(f, "too complex: {m}"),
            VerifyError::Unknown(m) => write!(f, "unknown: {m}"),
            VerifyError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<gpumc_exec::EnumerateError> for VerifyError {
    fn from(e: gpumc_exec::EnumerateError) -> Self {
        match e {
            gpumc_exec::EnumerateError::Unsupported(m) => VerifyError::Unsupported(m),
            gpumc_exec::EnumerateError::TooComplex(m) => VerifyError::TooComplex(m),
        }
    }
}

impl From<gpumc_exec::DporError> for VerifyError {
    fn from(e: gpumc_exec::DporError) -> Self {
        match e {
            gpumc_exec::DporError::Unsupported(m) => VerifyError::Unsupported(m),
            gpumc_exec::DporError::TooComplex(m) => VerifyError::TooComplex(m),
            // Budget exhaustion / cancellation: a withheld verdict.
            gpumc_exec::DporError::Interrupted(m) => VerifyError::Unknown(m),
        }
    }
}

impl From<gpumc_encode::EncodeError> for VerifyError {
    fn from(e: gpumc_encode::EncodeError) -> Self {
        match e {
            gpumc_encode::EncodeError::Unsupported(m) => VerifyError::Unsupported(m),
            gpumc_encode::EncodeError::WitnessMismatch(m) => VerifyError::Internal(m),
            gpumc_encode::EncodeError::Unknown(m) => VerifyError::Unknown(m),
        }
    }
}

/// A found witness, rendered for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Human-readable execution graph.
    pub rendering: String,
}

impl Witness {
    fn from_execution(e: &Execution<'_>) -> Witness {
        Witness {
            rendering: e.render(),
        }
    }
}

/// Outcome of an assertion (safety) check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionOutcome {
    /// Whether the quantified condition's *witness* was found: for
    /// `exists`/`~exists`, a behaviour satisfying the condition; for
    /// `forall`, a behaviour violating it.
    pub reachable: bool,
    /// Whether the test's expectation holds: `exists` expects reachable,
    /// `~exists` expects unreachable, `forall` expects no violation.
    /// `None` when the program has no assertion.
    pub satisfied_expectation: Option<bool>,
    /// Witness execution, when one was found.
    pub witness: Option<Witness>,
    /// Measurement statistics.
    pub stats: Stats,
}

/// Outcome of a liveness or data-race-freedom check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyOutcome {
    /// Whether a violation (stuck state / race) was found.
    pub violated: bool,
    /// Witness execution, when violated.
    pub witness: Option<Witness>,
    /// Measurement statistics.
    pub stats: Stats,
}

/// Measurement data attached to every outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Number of events in the compiled graph.
    pub events: usize,
    /// Number of threads.
    pub threads: usize,
    /// SAT variables (0 for the enumeration engine).
    pub sat_vars: usize,
    /// SAT clauses (0 for the enumeration engine).
    pub sat_clauses: usize,
    /// Candidate behaviours explored (enumeration and DPOR engines).
    pub candidates: u64,
    /// Exploration/pruning counters of the DPOR engine, `None` for the
    /// other engines.
    pub dpor: Option<gpumc_exec::DporStats>,
    /// Work-stealing report of the parallel DPOR driver, `None` when the
    /// DPOR engine ran sequentially (parallel policy off or one worker).
    pub dpor_parallel: Option<gpumc_exec::DporParReport>,
    /// Wall-clock time in microseconds.
    pub time_us: u128,
}

/// Where the time of one [`Verifier::check_all`] went, microseconds per
/// pipeline phase. Populated on the incremental SAT path; all-zero on
/// the fresh baseline and the enumeration engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Unrolling + compiling the program to its event graph.
    pub compile_us: u64,
    /// Relation-analysis bounds (zero on a [`gpumc_encode::BoundsMemo`]
    /// hit).
    pub bounds_us: u64,
    /// Building the SAT encoding.
    pub encode_us: u64,
    /// Total solver time across all queries.
    pub solve_us: u64,
}

/// All three property verdicts of one program, as returned by
/// [`Verifier::check_all`].
#[derive(Debug, Clone)]
pub struct FullOutcome {
    /// The safety (assertion) verdict.
    pub assertion: AssertionOutcome,
    /// The liveness verdict.
    pub liveness: PropertyOutcome,
    /// The data-race verdict, or `None` when the model defines no
    /// flagged `dr` relation (the PTX models, §3.5).
    pub data_races: Option<PropertyOutcome>,
    /// Per-query solver-counter deltas, in query order. Empty on the
    /// fresh (non-incremental) path and for the enumeration engine.
    pub queries: Vec<gpumc_encode::QueryRecord>,
    /// CNF simplification statistics from the shared encoding, or
    /// `None` when simplification is disabled, on the fresh
    /// (non-incremental) path, or for the enumeration engine.
    pub simplify: Option<gpumc_sat::SimplifyStats>,
    /// Per-phase wall-clock breakdown.
    pub phases: PhaseTimings,
    /// Wall-clock time of the whole `check_all`, including compilation
    /// and encoding, in microseconds.
    pub total_time_us: u128,
    /// Aggregate portfolio-solve statistics across the queries, or
    /// `None` when every query solved sequentially (policy off, `Auto`
    /// below its size threshold, or the fresh/enumeration path).
    pub portfolio: Option<gpumc_sat::PortfolioStats>,
}

impl FullOutcome {
    /// Renders the per-query solver statistics (one line per query) for
    /// diagnostics output; empty string when no deltas were recorded.
    pub fn render_query_stats(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for q in &self.queries {
            let _ = writeln!(
                out,
                "  query {:<12} {:>8} conflicts {:>9} decisions {:>10} propagations \
                 {:>6} learnt-in {:>6} learnt-out {:>8} us",
                q.label,
                q.stats.conflicts,
                q.stats.decisions,
                q.stats.propagations,
                q.stats.learnt_before,
                q.stats.learnt_after,
                q.stats.time_us,
            );
        }
        out
    }
}

/// The verification façade: a consistency model, an engine, and a bound.
///
/// The model is held behind an [`Arc`] so a compiled (parsed + resolved)
/// `.cat` model can be shared immutably across worker threads — cloning a
/// `Verifier` never re-parses or deep-copies the model. Construct from
/// either an owned [`CatModel`] or a shared handle such as
/// [`gpumc_models::load_shared`].
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Verifier {
    model: Arc<CatModel>,
    engine: EngineKind,
    bound: u32,
    bv_width: usize,
    use_bounds: bool,
    enum_cap: Option<u64>,
    bounds_memo: Option<Arc<gpumc_encode::BoundsMemo>>,
    incremental: bool,
    simplify: bool,
    cancel: Option<gpumc_sat::CancelToken>,
    conflict_budget: Option<u64>,
    mem_budget_mb: Option<u64>,
    parallel: gpumc_sat::ParallelPolicy,
}

impl Verifier {
    /// Creates a SAT-engine verifier with unrolling bound 2.
    ///
    /// Accepts an owned [`CatModel`] or an `Arc<CatModel>` (e.g. from
    /// [`gpumc_models::load_shared`]); the latter avoids any copy.
    pub fn new(model: impl Into<Arc<CatModel>>) -> Verifier {
        Verifier {
            model: model.into(),
            engine: EngineKind::Sat,
            bound: 2,
            bv_width: 8,
            use_bounds: true,
            enum_cap: None,
            bounds_memo: None,
            incremental: true,
            simplify: true,
            cancel: None,
            conflict_budget: None,
            mem_budget_mb: None,
            parallel: gpumc_sat::ParallelPolicy::Off,
        }
    }

    /// Caps the enumeration engine's candidate count (builder style);
    /// exceeding it returns [`VerifyError::TooComplex`], standing in for
    /// the Alloy tools' out-of-memory failures in Figure 15. The DPOR
    /// engine interprets the same cap as its exploration-step budget,
    /// whose exhaustion surfaces as [`VerifyError::Unknown`].
    pub fn with_enumeration_cap(mut self, cap: u64) -> Verifier {
        self.enum_cap = Some(cap);
        self
    }

    /// Selects the engine (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Verifier {
        self.engine = engine;
        self
    }

    /// Sets the loop-unrolling bound (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn with_bound(mut self, bound: u32) -> Verifier {
        assert!(bound >= 1, "bound must be at least 1");
        self.bound = bound;
        self
    }

    /// Sets the bit-vector width of the SAT engine (builder style).
    pub fn with_bv_width(mut self, width: usize) -> Verifier {
        self.bv_width = width;
        self
    }

    /// Enables or disables relation-analysis pruning (ablation switch).
    pub fn with_relation_analysis(mut self, enabled: bool) -> Verifier {
        self.use_bounds = enabled;
        self
    }

    /// Reuses relation-analysis bounds through `memo` (builder style):
    /// repeated checks of the same (program, bound) — e.g. safety then
    /// liveness of one test — compute the Table 3 bounds once.
    pub fn with_bounds_memo(mut self, memo: Arc<gpumc_encode::BoundsMemo>) -> Verifier {
        self.bounds_memo = Some(memo);
        self
    }

    /// Installs a cooperative cancellation token (builder style): every
    /// SAT query polls it, and cancellation or deadline expiry surfaces
    /// as [`VerifyError::Unknown`] — the check is abandoned cleanly, not
    /// panicked. Soundness: an interrupted check can only *withhold* a
    /// verdict, never report a wrong one.
    pub fn with_cancel_token(mut self, token: gpumc_sat::CancelToken) -> Verifier {
        self.cancel = Some(token);
        self
    }

    /// Caps SAT conflicts per query (builder style); exhaustion surfaces
    /// as [`VerifyError::Unknown`].
    pub fn with_conflict_budget(mut self, budget: u64) -> Verifier {
        self.conflict_budget = Some(budget);
        self
    }

    /// Caps the SAT solver's estimated memory footprint, in MiB
    /// (builder style). Exceeding it surfaces as
    /// [`VerifyError::Unknown`] — a per-query `unknown` instead of an
    /// OOM-killed process. Both the encode phase and the solve loop
    /// observe the budget.
    pub fn with_mem_budget_mb(mut self, mb: u64) -> Verifier {
        self.mem_budget_mb = Some(mb);
        self
    }

    /// Selects whether [`Verifier::check_all`] answers all properties
    /// from one incremental [`gpumc_encode::SolverSession`] (the
    /// default) or from three independent fresh encodings (builder
    /// style). The fresh path exists as the differential baseline; the
    /// two must be verdict-identical.
    pub fn with_incremental(mut self, incremental: bool) -> Verifier {
        self.incremental = incremental;
        self
    }

    /// Enables or disables SatELite-style CNF simplification of the
    /// SAT encoding (builder style; on by default). The `--no-simplify`
    /// escape hatch of the CLI and server map here.
    pub fn with_simplify(mut self, simplify: bool) -> Verifier {
        self.simplify = simplify;
        self
    }

    /// Selects the parallel solve strategy (builder style; off by
    /// default). With the SAT engine,
    /// [`gpumc_sat::ParallelPolicy::Portfolio`] races N diversified
    /// solvers with lock-free clause sharing and a cube-and-conquer
    /// fallback; `Auto` engages the portfolio only when the encoded CNF
    /// looks expensive enough to pay for it. With the DPOR engine, the
    /// same policy selects the work-stealing parallel driver instead: N
    /// workers (or all cores under `Auto`) split the decision tree into
    /// independent subtree tasks with a shared step budget and
    /// first-witness-wins cancellation.
    pub fn with_parallel(mut self, policy: gpumc_sat::ParallelPolicy) -> Verifier {
        self.parallel = policy;
        self
    }

    /// The configured model.
    pub fn model(&self) -> &CatModel {
        &self.model
    }

    /// A shared handle to the configured model (no deep copy).
    pub fn shared_model(&self) -> Arc<CatModel> {
        Arc::clone(&self.model)
    }

    /// Compiles a program to its event graph with this verifier's bound.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Ir`] when validation or unrolling fails.
    pub fn compile(&self, program: &Program) -> Result<EventGraph, VerifyError> {
        let unrolled = unroll(program, self.bound).map_err(|e| VerifyError::Ir(e.message))?;
        Ok(compile(&unrolled))
    }

    /// Checks the program's `exists`/`~exists`/`forall` condition.
    ///
    /// # Errors
    ///
    /// See [`VerifyError`].
    pub fn check_assertion(&self, program: &Program) -> Result<AssertionOutcome, VerifyError> {
        self.check_interrupt()?;
        let graph = self.compile(program)?;
        let start = Instant::now();
        let (reachable, witness, mut stats) = match &self.engine {
            EngineKind::Sat => {
                let mut enc = self.encode(&graph)?;
                let r = enc.find_assertion_witness()?;
                let stats = self.sat_stats(&graph, &enc);
                (
                    r.found,
                    r.witness.as_ref().map(Witness::from_execution),
                    stats,
                )
            }
            EngineKind::Enumerate { straight_line_only } => {
                let mut opts = EnumerateOptions {
                    straight_line_only: *straight_line_only,
                    ..EnumerateOptions::default()
                };
                if let Some(cap) = self.enum_cap {
                    opts.max_candidates = cap;
                }
                // An assertion-less (filter-only) test asks whether any
                // consistent complete behaviour survives, matching the
                // SAT encoder's `Exists(True)` default.
                let cond = graph
                    .assertion
                    .clone()
                    .unwrap_or(Assertion::Exists(Condition::True));
                let mut found: Option<Witness> = None;
                let st = enumerate(&graph, &self.model, &opts, |b| {
                    if found.is_some() || !b.execution.all_completed() {
                        return;
                    }
                    let (c, negate) = assertion_query(&cond);
                    let holds = b.execution.eval_condition(c) == Some(true);
                    if holds != negate {
                        found = Some(Witness::from_execution(&b.execution));
                    }
                })?;
                let stats = Stats {
                    events: graph.n_events(),
                    threads: graph.threads().len(),
                    candidates: st.candidates,
                    ..Stats::default()
                };
                (found.is_some(), found, stats)
            }
            EngineKind::Dpor => {
                let cond = graph
                    .assertion
                    .clone()
                    .unwrap_or(Assertion::Exists(Condition::True));
                let found: Mutex<Option<Witness>> = Mutex::new(None);
                let (st, par) = self.dpor_run(&graph, &|b| {
                    let mut w = found.lock().expect("witness lock");
                    if w.is_some() {
                        // First witness wins: the parallel driver cancels
                        // the remaining tasks; the sequential engine
                        // ignores the Break and stays exhaustive.
                        return ControlFlow::Break(());
                    }
                    if !b.execution.all_completed() {
                        return ControlFlow::Continue(());
                    }
                    let (c, negate) = assertion_query(&cond);
                    let holds = b.execution.eval_condition(c) == Some(true);
                    if holds != negate {
                        *w = Some(Witness::from_execution(&b.execution));
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                })?;
                let found = found.into_inner().expect("witness lock");
                (found.is_some(), found, self.dpor_stats(&graph, st, par))
            }
        };
        stats.time_us = start.elapsed().as_micros();
        let satisfied_expectation = program.assertion.as_ref().map(|a| match a {
            Assertion::Exists(_) => reachable,
            Assertion::NotExists(_) => !reachable,
            Assertion::Forall(_) => !reachable,
        });
        Ok(AssertionOutcome {
            reachable,
            satisfied_expectation,
            witness,
            stats,
        })
    }

    /// Checks liveness (§6.4): searches for a consistent stuck state.
    ///
    /// # Errors
    ///
    /// See [`VerifyError`].
    pub fn check_liveness(&self, program: &Program) -> Result<PropertyOutcome, VerifyError> {
        self.check_interrupt()?;
        let graph = self.compile(program)?;
        let start = Instant::now();
        let (violated, witness, mut stats) = match &self.engine {
            EngineKind::Sat => {
                let mut enc = self.encode(&graph)?;
                let r = enc.find_liveness_violation()?;
                let stats = self.sat_stats(&graph, &enc);
                (
                    r.found,
                    r.witness.as_ref().map(Witness::from_execution),
                    stats,
                )
            }
            EngineKind::Enumerate { straight_line_only } => {
                if *straight_line_only {
                    return Err(VerifyError::Unsupported(
                        "the Alloy-style baseline cannot check liveness".into(),
                    ));
                }
                let mut found: Option<Witness> = None;
                let st = enumerate(&graph, &self.model, &EnumerateOptions::default(), |b| {
                    if found.is_none() && b.execution.is_liveness_violation() {
                        found = Some(Witness::from_execution(&b.execution));
                    }
                })?;
                let stats = Stats {
                    events: graph.n_events(),
                    threads: graph.threads().len(),
                    candidates: st.candidates,
                    ..Stats::default()
                };
                (found.is_some(), found, stats)
            }
            EngineKind::Dpor => {
                let found: Mutex<Option<Witness>> = Mutex::new(None);
                let (st, par) = self.dpor_run(&graph, &|b| {
                    let mut w = found.lock().expect("witness lock");
                    if w.is_some() {
                        return ControlFlow::Break(());
                    }
                    if b.execution.is_liveness_violation() {
                        *w = Some(Witness::from_execution(&b.execution));
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                })?;
                let found = found.into_inner().expect("witness lock");
                (found.is_some(), found, self.dpor_stats(&graph, st, par))
            }
        };
        stats.time_us = start.elapsed().as_micros();
        Ok(PropertyOutcome {
            violated,
            witness,
            stats,
        })
    }

    /// Checks data-race freedom through the model's flagged `dr` axiom.
    ///
    /// # Errors
    ///
    /// Fails with [`VerifyError::Unsupported`] when the model has no
    /// `dr` flag (the PTX models define races differently and do not
    /// treat them as undefined behaviour, §3.5).
    pub fn check_data_races(&self, program: &Program) -> Result<PropertyOutcome, VerifyError> {
        self.check_interrupt()?;
        let graph = self.compile(program)?;
        let start = Instant::now();
        let (violated, witness, mut stats) = match &self.engine {
            EngineKind::Sat => {
                let mut enc = self.encode(&graph)?;
                let r = enc.find_flag("dr")?;
                let stats = self.sat_stats(&graph, &enc);
                (
                    r.found,
                    r.witness.as_ref().map(Witness::from_execution),
                    stats,
                )
            }
            EngineKind::Enumerate { straight_line_only } => {
                if self.model.flagged_axioms().count() == 0 {
                    return Err(VerifyError::Unsupported(
                        "model defines no flagged data-race relation".into(),
                    ));
                }
                let opts = EnumerateOptions {
                    straight_line_only: *straight_line_only,
                    ..EnumerateOptions::default()
                };
                let mut found: Option<Witness> = None;
                let st = enumerate(&graph, &self.model, &opts, |b| {
                    if found.is_none() && b.execution.all_completed() && b.verdict.has_flag("dr") {
                        found = Some(Witness::from_execution(&b.execution));
                    }
                })?;
                let stats = Stats {
                    events: graph.n_events(),
                    threads: graph.threads().len(),
                    candidates: st.candidates,
                    ..Stats::default()
                };
                (found.is_some(), found, stats)
            }
            EngineKind::Dpor => {
                if self.model.flagged_axioms().count() == 0 {
                    return Err(VerifyError::Unsupported(
                        "model defines no flagged data-race relation".into(),
                    ));
                }
                let found: Mutex<Option<Witness>> = Mutex::new(None);
                let (st, par) = self.dpor_run(&graph, &|b| {
                    let mut w = found.lock().expect("witness lock");
                    if w.is_some() {
                        return ControlFlow::Break(());
                    }
                    if b.execution.all_completed() && b.verdict.has_flag("dr") {
                        *w = Some(Witness::from_execution(&b.execution));
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                })?;
                let found = found.into_inner().expect("witness lock");
                (found.is_some(), found, self.dpor_stats(&graph, st, par))
            }
        };
        stats.time_us = start.elapsed().as_micros();
        Ok(PropertyOutcome {
            violated,
            witness,
            stats,
        })
    }

    /// Checks all three properties — assertion, liveness, data races —
    /// of one program.
    ///
    /// With the SAT engine on the (default) incremental path, the
    /// program semantics and the `.cat` model are encoded **once** into
    /// a [`gpumc_encode::SolverSession`] and the three properties are
    /// posed as assumption-guarded queries against the single shared
    /// solver, so learnt clauses carry over between queries; the
    /// returned [`FullOutcome::queries`] records the per-query solver
    /// deltas. With [`Verifier::with_incremental`]`(false)` or the
    /// enumeration engine, each property gets its own fresh check.
    ///
    /// Both paths are verdict-identical by construction and by the
    /// differential conformance suite (`incremental_agreement.rs`). The
    /// data-race verdict is `None` when the model defines no flagged
    /// `dr` relation — where [`Verifier::check_data_races`] would
    /// return [`VerifyError::Unsupported`].
    ///
    /// # Errors
    ///
    /// See [`VerifyError`].
    pub fn check_all(&self, program: &Program) -> Result<FullOutcome, VerifyError> {
        if !self.incremental || self.engine != EngineKind::Sat {
            return self.check_all_fresh(program);
        }
        self.check_interrupt()?;
        let total = Instant::now();
        let graph = self.compile(program)?;
        let compile_us = total.elapsed().as_micros() as u64;
        let mut session = self.session(&graph)?;

        let r = session.find_assertion_witness()?;
        let reachable = r.found;
        let assertion_witness = r.witness.as_ref().map(Witness::from_execution);
        let assertion_stats = self.session_stats(&graph, &session);
        let satisfied_expectation = program.assertion.as_ref().map(|a| match a {
            Assertion::Exists(_) => reachable,
            Assertion::NotExists(_) => !reachable,
            Assertion::Forall(_) => !reachable,
        });

        let r = session.find_liveness_violation()?;
        let liveness = PropertyOutcome {
            violated: r.found,
            witness: r.witness.as_ref().map(Witness::from_execution),
            stats: self.session_stats(&graph, &session),
        };

        let data_races = if session.has_flag("dr") {
            let r = session.find_flag("dr")?;
            Some(PropertyOutcome {
                violated: r.found,
                witness: r.witness.as_ref().map(Witness::from_execution),
                stats: self.session_stats(&graph, &session),
            })
        } else {
            None
        };

        let phases = PhaseTimings {
            compile_us,
            bounds_us: session.bounds_time_us(),
            encode_us: session.encode_time_us(),
            solve_us: session
                .queries()
                .iter()
                .map(|q| q.stats.time_us as u64)
                .sum(),
        };
        Ok(FullOutcome {
            assertion: AssertionOutcome {
                reachable,
                satisfied_expectation,
                witness: assertion_witness,
                stats: assertion_stats,
            },
            liveness,
            data_races,
            queries: session.queries().to_vec(),
            simplify: session.simplify_stats(),
            phases,
            total_time_us: total.elapsed().as_micros(),
            portfolio: session.portfolio_stats(),
        })
    }

    /// The non-incremental [`Verifier::check_all`] baseline: three
    /// independent checks, each with its own encoding (or enumeration).
    fn check_all_fresh(&self, program: &Program) -> Result<FullOutcome, VerifyError> {
        self.check_interrupt()?;
        let total = Instant::now();
        let assertion = self.check_assertion(program)?;
        let liveness = self.check_liveness(program)?;
        let data_races = match self.check_data_races(program) {
            Ok(o) => Some(o),
            Err(VerifyError::Unsupported(_)) => None,
            Err(e) => return Err(e),
        };
        Ok(FullOutcome {
            assertion,
            liveness,
            data_races,
            queries: Vec::new(),
            simplify: None,
            phases: PhaseTimings::default(),
            total_time_us: total.elapsed().as_micros(),
            portfolio: None,
        })
    }

    /// Early cancellation check, so a request whose deadline expired on
    /// the queue fails before paying for compilation or encoding.
    fn check_interrupt(&self) -> Result<(), VerifyError> {
        if let Some(i) = self.cancel.as_ref().and_then(|c| c.check()) {
            return Err(VerifyError::Unknown(i.to_string()));
        }
        Ok(())
    }

    /// The encode options this verifier implies. The cancel token rides
    /// inside so the *encode* phase observes deadlines too, not only the
    /// solve loop; likewise the memory budget.
    fn encode_options(&self) -> EncodeOptions {
        EncodeOptions {
            bv_width: self.bv_width,
            use_bounds: self.use_bounds,
            simplify: self.simplify,
            cancel: self.cancel.clone(),
            mem_budget_bytes: self.mem_budget_mb.map(|mb| {
                usize::try_from(mb)
                    .unwrap_or(usize::MAX)
                    .saturating_mul(1 << 20)
            }),
            parallel: self.parallel,
            ..EncodeOptions::default()
        }
    }

    fn session<'g>(
        &self,
        graph: &'g EventGraph,
    ) -> Result<gpumc_encode::SolverSession<'g>, VerifyError> {
        let opts = self.encode_options();
        let mut session = match &self.bounds_memo {
            Some(memo) => {
                gpumc_encode::SolverSession::build_memoized(graph, &self.model, &opts, memo)?
            }
            None => gpumc_encode::SolverSession::build(graph, &self.model, &opts)?,
        };
        session.set_cancel_token(self.cancel.clone());
        session.set_conflict_budget(self.conflict_budget);
        Ok(session)
    }

    fn session_stats(
        &self,
        graph: &EventGraph,
        session: &gpumc_encode::SolverSession<'_>,
    ) -> Stats {
        Stats {
            events: graph.n_events(),
            threads: graph.threads().len(),
            sat_vars: session.num_vars(),
            sat_clauses: session.num_clauses(),
            time_us: session.last_query().map_or(0, |q| q.stats.time_us),
            ..Stats::default()
        }
    }

    fn encode<'g>(&self, graph: &'g EventGraph) -> Result<gpumc_encode::Encoding<'g>, VerifyError> {
        let opts = self.encode_options();
        let mut enc = match &self.bounds_memo {
            Some(memo) => gpumc_encode::encode_memoized(graph, &self.model, &opts, memo)?,
            None => encode(graph, &self.model, &opts)?,
        };
        enc.set_cancel_token(self.cancel.clone());
        enc.set_conflict_budget(self.conflict_budget);
        Ok(enc)
    }

    /// How many DPOR worker threads the parallel policy implies. `Off`
    /// and `Portfolio(1)` run the sequential engine; `Auto` spans the
    /// host's cores (so a 1-core host degrades to sequential).
    fn dpor_workers(&self) -> usize {
        match self.parallel {
            gpumc_sat::ParallelPolicy::Off => 1,
            gpumc_sat::ParallelPolicy::Portfolio(n) => n.max(1) as usize,
            gpumc_sat::ParallelPolicy::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Runs the DPOR engine over a compiled graph, threading the
    /// verifier's cancellation token and exploration budget through.
    /// With a parallel policy and more than one worker, the decision
    /// tree is split over a work-stealing pool and `visit` is invoked
    /// concurrently; a [`ControlFlow::Break`] cancels the remaining
    /// subtrees ("first witness wins"), while the sequential engine
    /// ignores it and explores exhaustively.
    fn dpor_run<'g>(
        &self,
        graph: &'g EventGraph,
        visit: &(dyn Fn(&gpumc_exec::Behavior<'g>) -> ControlFlow<()> + Sync),
    ) -> Result<(gpumc_exec::DporStats, Option<gpumc_exec::DporParReport>), VerifyError> {
        let mut opts = gpumc_exec::DporOptions::default();
        if let Some(cap) = self.enum_cap {
            opts.max_steps = cap;
        }
        let poll = self
            .cancel
            .as_ref()
            .map(|c| move || c.check().map(|i| i.to_string()));
        let workers = self.dpor_workers();
        if workers > 1 {
            let poll_dyn = poll
                .as_ref()
                .map(|f| f as &(dyn Fn() -> Option<String> + Sync));
            let report = gpumc_exec::dpor_explore_parallel(
                graph,
                &self.model,
                &opts,
                workers,
                poll_dyn,
                visit,
            )
            .map_err(VerifyError::from)?;
            Ok((report.stats, Some(report)))
        } else {
            let poll_dyn = poll.as_ref().map(|f| f as &dyn Fn() -> Option<String>);
            let st =
                gpumc_exec::dpor_explore_interruptible(graph, &self.model, &opts, poll_dyn, |b| {
                    let _ = visit(b);
                })
                .map_err(VerifyError::from)?;
            Ok((st, None))
        }
    }

    fn dpor_stats(
        &self,
        graph: &EventGraph,
        st: gpumc_exec::DporStats,
        par: Option<gpumc_exec::DporParReport>,
    ) -> Stats {
        Stats {
            events: graph.n_events(),
            threads: graph.threads().len(),
            candidates: st.explored,
            dpor: Some(st),
            dpor_parallel: par,
            ..Stats::default()
        }
    }

    fn sat_stats(&self, graph: &EventGraph, enc: &gpumc_encode::Encoding<'_>) -> Stats {
        Stats {
            events: graph.n_events(),
            threads: graph.threads().len(),
            sat_vars: enc.num_vars(),
            sat_clauses: enc.num_clauses(),
            ..Stats::default()
        }
    }
}

fn assertion_query(a: &Assertion) -> (&Condition, bool) {
    match a {
        Assertion::Exists(c) | Assertion::NotExists(c) => (c, false),
        Assertion::Forall(c) => (c, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP_WEAK: &str = r#"
PTX MP
{ x = 0; flag = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.weak x, 1 | ld.weak r0, flag ;
st.weak flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

    #[test]
    fn sat_and_enumerate_agree_on_weak_mp() {
        let p = parse_litmus(MP_WEAK).unwrap();
        for engine in [
            EngineKind::Sat,
            EngineKind::Enumerate {
                straight_line_only: false,
            },
            EngineKind::Dpor,
        ] {
            let v = Verifier::new(gpumc_models::ptx60()).with_engine(engine);
            let o = v.check_assertion(&p).unwrap();
            assert!(o.reachable);
            assert_eq!(o.satisfied_expectation, Some(true));
            assert!(o.witness.is_some());
            assert!(o.stats.events > 0);
        }
    }

    #[test]
    fn straight_line_baseline_rejects_loops() {
        let src = r#"
PTX spin
{ flag = 0; }
P0@cta 0,gpu 0 ;
LC00: ;
ld.relaxed.gpu r0, flag ;
bne r0, 1, LC00 ;
exists (P0:r0 == 1)
"#;
        let p = parse_litmus(src).unwrap();
        let v = Verifier::new(gpumc_models::ptx60()).with_engine(EngineKind::Enumerate {
            straight_line_only: true,
        });
        assert!(matches!(
            v.check_assertion(&p),
            Err(VerifyError::Unsupported(_))
        ));
        // The SAT engine handles it.
        let v = Verifier::new(gpumc_models::ptx60());
        let o = v.check_liveness(&p).unwrap();
        assert!(o.violated);
    }

    #[test]
    fn drf_requires_a_flagged_model() {
        let p = parse_litmus(MP_WEAK).unwrap();
        let v = Verifier::new(gpumc_models::ptx60());
        assert!(matches!(
            v.check_data_races(&p),
            Err(VerifyError::Unsupported(_))
        ));
    }

    #[test]
    fn vulkan_drf_query_finds_races() {
        let src = r#"
VULKAN race
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1       | ld.sc0 r0, x ;
exists (P1:r0 == 1)
"#;
        let p = parse_litmus(src).unwrap();
        let v = Verifier::new(gpumc_models::vulkan());
        let o = v.check_data_races(&p).unwrap();
        assert!(o.violated);
        assert!(o.witness.is_some());
    }

    #[test]
    fn witness_rendering_mentions_events() {
        let p = parse_litmus(MP_WEAK).unwrap();
        let v = Verifier::new(gpumc_models::ptx60());
        let o = v.check_assertion(&p).unwrap();
        let w = o.witness.unwrap();
        assert!(w.rendering.contains("rf:"));
        assert!(w.rendering.contains("P0:1"));
    }

    #[test]
    #[should_panic(expected = "bound must be at least 1")]
    fn zero_bound_panics() {
        let _ = Verifier::new(gpumc_models::ptx60()).with_bound(0);
    }

    #[test]
    fn cancelled_verifier_reports_unknown() {
        let p = parse_litmus(MP_WEAK).unwrap();
        let token = gpumc_sat::CancelToken::new();
        token.cancel();
        let v = Verifier::new(gpumc_models::ptx60()).with_cancel_token(token);
        assert!(matches!(v.check_all(&p), Err(VerifyError::Unknown(_))));
        assert!(matches!(
            v.check_assertion(&p),
            Err(VerifyError::Unknown(_))
        ));
        // A fresh verifier over the same (shared) model still answers.
        let v = Verifier::new(gpumc_models::ptx60());
        assert!(v.check_all(&p).unwrap().assertion.reachable);
    }

    #[test]
    fn tiny_conflict_budget_is_unknown_not_panic() {
        // IRIW under scoped PTX is hard enough to need more than one
        // conflict; the budget must surface as Unknown, never a panic.
        let src = r#"
PTX IRIW
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 | P2@cta 2,gpu 0 | P3@cta 3,gpu 0 ;
st.weak x, 1 | ld.weak r0, x | ld.weak r0, y | st.weak y, 1 ;
 | ld.weak r1, y | ld.weak r1, x | ;
exists (P1:r0 == 1 /\ P1:r1 == 0 /\ P2:r0 == 1 /\ P2:r1 == 0)
"#;
        let p = parse_litmus(src).unwrap();
        let v = Verifier::new(gpumc_models::ptx60()).with_conflict_budget(1);
        match v.check_all(&p) {
            Err(VerifyError::Unknown(reason)) => {
                assert!(reason.contains("budget"), "reason: {reason}")
            }
            Ok(_) => {} // solved within one conflict: also fine
            Err(e) => panic!("expected Unknown, got {e:?}"),
        }
    }

    #[test]
    fn incremental_check_all_reports_phase_timings() {
        let p = parse_litmus(MP_WEAK).unwrap();
        let v = Verifier::new(gpumc_models::ptx60());
        let o = v.check_all(&p).unwrap();
        assert!(o.phases.encode_us > 0, "encoding must take measurable time");
        assert!(
            u128::from(o.phases.encode_us) <= o.total_time_us,
            "phase time cannot exceed the total"
        );
    }

    #[test]
    fn engine_names_parse() {
        assert_eq!("sat".parse::<EngineKind>(), Ok(EngineKind::Sat));
        assert_eq!(
            "enumerate".parse::<EngineKind>(),
            Ok(EngineKind::Enumerate {
                straight_line_only: false
            })
        );
        assert_eq!(
            "alloy".parse::<EngineKind>(),
            Ok(EngineKind::Enumerate {
                straight_line_only: true
            })
        );
        assert_eq!("dpor".parse::<EngineKind>(), Ok(EngineKind::Dpor));
        let err = "smt".parse::<EngineKind>().unwrap_err();
        assert!(err.contains("unknown engine `smt`"), "err: {err}");
        assert!(err.contains("dpor"), "error must list valid names: {err}");
    }

    #[test]
    fn dpor_engine_handles_branching_and_cancellation() {
        let src = r#"
PTX spin
{ flag = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
LC00: | st.relaxed.gpu flag, 1 ;
ld.relaxed.gpu r0, flag | ;
bne r0, 1, LC00 | ;
exists (P0:r0 == 1)
"#;
        let p = parse_litmus(src).unwrap();
        let v = Verifier::new(gpumc_models::ptx60()).with_engine(EngineKind::Dpor);
        let o = v.check_assertion(&p).unwrap();
        assert!(o.reachable, "the spin loop exits once the flag is set");
        assert!(o.stats.dpor.is_some(), "dpor stats must be recorded");
        let live = v.check_liveness(&p).unwrap();
        assert!(
            !live.violated,
            "the stuck read cannot be co-maximal once the writer runs"
        );
        // A cancelled run withholds the verdict.
        let token = gpumc_sat::CancelToken::new();
        token.cancel();
        let v = v.with_cancel_token(token);
        assert!(matches!(
            v.check_assertion(&p),
            Err(VerifyError::Unknown(_))
        ));
        // So does a starved step budget.
        let v = Verifier::new(gpumc_models::ptx60())
            .with_engine(EngineKind::Dpor)
            .with_enumeration_cap(2);
        assert!(matches!(
            v.check_assertion(&p),
            Err(VerifyError::Unknown(_))
        ));
    }

    #[test]
    fn parallel_policy_engages_dpor_driver() {
        let src = r#"
PTX spin-par
{ flag = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
LC00: | st.relaxed.gpu flag, 1 ;
ld.relaxed.gpu r0, flag | ;
bne r0, 1, LC00 | ;
exists (P0:r0 == 1)
"#;
        let p = parse_litmus(src).unwrap();
        let seq = Verifier::new(gpumc_models::ptx60()).with_engine(EngineKind::Dpor);
        let par = seq
            .clone()
            .with_parallel(gpumc_sat::ParallelPolicy::Portfolio(3));
        let so = seq.check_assertion(&p).unwrap();
        let po = par.check_assertion(&p).unwrap();
        assert_eq!(so.reachable, po.reachable, "verdicts must agree");
        assert!(
            so.stats.dpor_parallel.is_none(),
            "sequential run, no report"
        );
        let report = po.stats.dpor_parallel.expect("parallel report recorded");
        assert_eq!(report.workers, 3);
        // Liveness holds on both paths; no early stop, so the merged
        // stats equal the sequential engine's exactly.
        let sl = seq.check_liveness(&p).unwrap();
        let pl = par.check_liveness(&p).unwrap();
        assert_eq!(sl.violated, pl.violated);
        assert!(!sl.violated);
        let preport = pl.stats.dpor_parallel.expect("parallel report recorded");
        assert!(!preport.stopped_early, "no violation, nothing to cancel");
        assert_eq!(Some(preport.stats), sl.stats.dpor, "exact stats merge");
        // Off and Portfolio(1) stay on the sequential path.
        let one = seq
            .clone()
            .with_parallel(gpumc_sat::ParallelPolicy::Portfolio(1));
        assert!(one
            .check_assertion(&p)
            .unwrap()
            .stats
            .dpor_parallel
            .is_none());
    }

    #[test]
    fn parse_error_surfaces() {
        assert!(matches!(
            parse_litmus("garbage"),
            Err(VerifyError::Parse(_))
        ));
    }
}
