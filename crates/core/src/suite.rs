//! Batch verification: a fixed-pool parallel suite runner.
//!
//! [`SuiteRunner`] fans a slice of catalogued tests out over `--jobs N`
//! worker threads (plain `std::thread::scope`, no extra dependencies) and
//! collects per-test outcomes **in input order**, so a suite's report is
//! byte-identical no matter how many workers ran it. Workers share the
//! process-wide compiled models ([`gpumc_models::load_shared`]) and each
//! test gets a [`gpumc_encode::BoundsMemo`] so any repeated encodings of
//! its graph reuse one relation analysis; in thorough SAT mode the
//! primary and secondary properties are answered from a single
//! incremental solver session ([`crate::Verifier::check_all`]) instead
//! of separate encodings.
//!
//! Timing is reported as *wall-clock* (the batch, end to end) versus
//! *aggregate CPU* (the sum of per-test times) — the ratio is the
//! parallel speedup actually achieved.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gpumc_catalog::{Property, Test};
use gpumc_encode::BoundsMemo;
use gpumc_models::ModelKind;

use crate::{EngineKind, Stats, Verifier, VerifyError};

/// Maps each item of `items` through `f` on a fixed pool of `jobs`
/// worker threads, returning results **in input order**.
///
/// `jobs == 0` selects [`std::thread::available_parallelism`]. Workers
/// claim items through a shared atomic cursor, so an expensive item never
/// stalls the queue behind it. `f` receives `(index, &item)`.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope unwinds once all workers stop).
pub fn parallel_map_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Resolves a `--jobs` request: `0` means "all available cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Configuration for a suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Worker threads; `0` = all available cores.
    pub jobs: usize,
    /// Engine used for every test.
    pub engine: EngineKind,
    /// Model override; `None` infers per test from its dialect
    /// (PTX → v7.5, Vulkan → vulkan), like `gpumc verify`.
    pub model: Option<ModelKind>,
    /// Candidate cap for the enumeration engine.
    pub enum_cap: Option<u64>,
    /// Also check a secondary property per test (safety tests get a
    /// liveness check and vice versa), answered from the same
    /// incremental solver session as the primary. SAT engine only;
    /// secondary verdicts never affect pass/fail.
    pub thorough: bool,
    /// Parallel solve strategy applied to every test's verifier
    /// (off / portfolio(N) / auto). SAT engine only.
    pub portfolio: gpumc_sat::ParallelPolicy,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            jobs: 0,
            engine: EngineKind::Sat,
            model: None,
            enum_cap: None,
            thorough: false,
            portfolio: gpumc_sat::ParallelPolicy::Off,
        }
    }
}

/// Outcome of one test inside a suite run.
#[derive(Debug, Clone)]
pub struct TestResult {
    /// Test name (unique within the suite).
    pub name: String,
    /// The catalogued property that produced [`TestResult::verdict`].
    pub property: Property,
    /// The catalogued expectation, if the literature fixes one.
    pub expected: Option<bool>,
    /// For safety: was the quantified witness found; for liveness/DRF:
    /// was the property violated. `Err` when the engine rejected the
    /// test.
    pub verdict: Result<bool, VerifyError>,
    /// Thorough mode: a secondary property verdict answered from the
    /// same incremental solver session as the primary.
    pub secondary: Option<(Property, bool)>,
    /// Statistics of the primary check.
    pub stats: Stats,
    /// Total worker time spent on this test (parse + compile + checks).
    pub time: Duration,
    /// Bounds-memo hits while verifying this test.
    pub memo_hits: usize,
    /// Per-query solver-counter deltas when the test was answered
    /// through one incremental session (thorough SAT mode); empty
    /// otherwise.
    pub queries: Vec<gpumc_encode::QueryRecord>,
}

impl TestResult {
    /// Whether the verdict agrees with the catalogued expectation
    /// (`None` when the test has no fixed expectation or errored).
    pub fn matches_expected(&self) -> Option<bool> {
        match (&self.verdict, self.expected) {
            (Ok(v), Some(e)) => Some(*v == e),
            _ => None,
        }
    }

    /// A test passes unless it errored or contradicted its expectation.
    pub fn passed(&self) -> bool {
        match &self.verdict {
            Ok(v) => self.expected.is_none_or(|e| e == *v),
            Err(_) => false,
        }
    }
}

/// The collected outcome of a suite run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-test results, in the order the tests were supplied.
    pub results: Vec<TestResult>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// End-to-end batch time.
    pub wall: Duration,
    /// Sum of per-test worker times.
    pub cpu: Duration,
}

impl SuiteReport {
    /// Number of passing tests (see [`TestResult::passed`]).
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.passed()).count()
    }

    /// The failing results (errors or expectation mismatches).
    pub fn failures(&self) -> impl Iterator<Item = &TestResult> {
        self.results.iter().filter(|r| !r.passed())
    }

    /// Total bounds-memo hits across the suite.
    pub fn memo_hits(&self) -> usize {
        self.results.iter().map(|r| r.memo_hits).sum()
    }

    /// Average worker concurrency: aggregate worker time over wall time.
    /// On an idle multi-core machine this equals the achieved parallel
    /// speedup; under core contention it reports overlap, not speedup.
    pub fn concurrency(&self) -> f64 {
        if self.wall.is_zero() {
            1.0
        } else {
            self.cpu.as_secs_f64() / self.wall.as_secs_f64()
        }
    }

    /// Renders the per-test result table.
    ///
    /// The table is **deterministic**: it contains verdicts and static
    /// sizes only — never timings, worker counts, or solver statistics —
    /// so running the same suite with any `--jobs` value yields a
    /// byte-identical rendering.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "{:30} {:9} {:18} {:8} {:>6} {:>7}",
            "TEST", "PROPERTY", "VERDICT", "EXPECTED", "EVENTS", "THREADS"
        )
        .unwrap();
        for r in &self.results {
            let verdict = match &r.verdict {
                Ok(v) => match r.property {
                    Property::Safety => {
                        if *v {
                            "witness".to_string()
                        } else {
                            "unreachable".to_string()
                        }
                    }
                    Property::Liveness | Property::DataRaceFreedom => {
                        if *v {
                            "violation".to_string()
                        } else {
                            "ok".to_string()
                        }
                    }
                },
                Err(e) => format!("error: {}", error_class(e)),
            };
            let expected = match r.matches_expected() {
                Some(true) => "match",
                Some(false) => "MISMATCH",
                None => "-",
            };
            writeln!(
                out,
                "{:30} {:9} {:18} {:8} {:>6} {:>7}",
                r.name,
                property_name(r.property),
                verdict,
                expected,
                r.stats.events,
                r.stats.threads
            )
            .unwrap();
        }
        out
    }

    /// Renders the timing summary (wall vs aggregate CPU). This part is
    /// *not* deterministic — keep it out of golden comparisons.
    pub fn render_summary(&self) -> String {
        format!(
            "{} tests, {} passed, {} failed | jobs {} | wall {:.1} ms, aggregate {:.1} ms, concurrency {:.2}x",
            self.results.len(),
            self.passed(),
            self.results.len() - self.passed(),
            self.jobs,
            self.wall.as_secs_f64() * 1e3,
            self.cpu.as_secs_f64() * 1e3,
            self.concurrency()
        )
    }
}

fn property_name(p: Property) -> &'static str {
    match p {
        Property::Safety => "safety",
        Property::Liveness => "liveness",
        Property::DataRaceFreedom => "drf",
    }
}

/// A stable one-word class for an error (full messages can embed
/// machine-dependent detail; the deterministic table wants neither).
fn error_class(e: &VerifyError) -> &'static str {
    match e {
        VerifyError::Parse(_) => "parse",
        VerifyError::Ir(_) => "ir",
        VerifyError::Unsupported(_) => "unsupported",
        VerifyError::TooComplex(_) => "too-complex",
        VerifyError::Unknown(_) => "unknown",
        VerifyError::Internal(_) => "internal",
    }
}

/// Runs test suites over a fixed worker pool. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct SuiteRunner {
    config: SuiteConfig,
}

impl SuiteRunner {
    /// A runner with the given configuration.
    pub fn new(config: SuiteConfig) -> SuiteRunner {
        SuiteRunner { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SuiteConfig {
        &self.config
    }

    /// Verifies every test, fanning out over the configured worker pool;
    /// results come back in input order regardless of completion order.
    pub fn run(&self, tests: &[Test]) -> SuiteReport {
        let start = Instant::now();
        let results = parallel_map_ordered(tests, self.config.jobs, |_, t| self.run_test(t));
        let wall = start.elapsed();
        let cpu = results.iter().map(|r| r.time).sum();
        SuiteReport {
            results,
            jobs: effective_jobs(self.config.jobs).min(tests.len().max(1)),
            wall,
            cpu,
        }
    }

    /// Verifies one test (the worker body). Public so custom drivers can
    /// combine it with [`parallel_map_ordered`] directly.
    pub fn run_test(&self, t: &Test) -> TestResult {
        let start = Instant::now();
        let memo = Arc::new(BoundsMemo::new());
        let mut result = TestResult {
            name: t.name.clone(),
            property: t.property,
            expected: t.expected,
            verdict: Err(VerifyError::Internal("not run".into())),
            secondary: None,
            stats: Stats::default(),
            time: Duration::ZERO,
            memo_hits: 0,
            queries: Vec::new(),
        };
        let program = match crate::parse_litmus(&t.source) {
            Ok(p) => p,
            Err(e) => {
                result.verdict = Err(e);
                result.time = start.elapsed();
                return result;
            }
        };
        let kind = self.config.model.unwrap_or(match program.arch {
            gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
            gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
        });
        let mut v = Verifier::new(gpumc_models::load_shared(kind))
            .with_bound(t.bound)
            .with_engine(self.config.engine)
            .with_bounds_memo(Arc::clone(&memo))
            .with_parallel(self.config.portfolio);
        if let Some(cap) = self.config.enum_cap {
            v = v.with_enumeration_cap(cap);
        }
        // Thorough SAT mode: all properties from one incremental solver
        // session ([`Verifier::check_all`]) — the test's own property is
        // the primary verdict, another one becomes the secondary, and the
        // per-query solver deltas are kept for diagnostics. Otherwise,
        // only the catalogued property is checked.
        if self.config.thorough && self.config.engine == EngineKind::Sat {
            match v.check_all(&program) {
                Ok(o) => {
                    result.verdict = match t.property {
                        Property::Safety => {
                            result.stats = o.assertion.stats;
                            Ok(o.assertion.reachable)
                        }
                        Property::Liveness => {
                            result.stats = o.liveness.stats;
                            Ok(o.liveness.violated)
                        }
                        Property::DataRaceFreedom => match &o.data_races {
                            Some(d) => {
                                result.stats = d.stats;
                                Ok(d.violated)
                            }
                            None => Err(VerifyError::Unsupported(
                                "model defines no flag `dr`".into(),
                            )),
                        },
                    };
                    result.secondary = match t.property {
                        Property::Safety => Some((Property::Liveness, o.liveness.violated)),
                        Property::Liveness | Property::DataRaceFreedom => {
                            if program.assertion.is_some() {
                                Some((Property::Safety, o.assertion.reachable))
                            } else {
                                None
                            }
                        }
                    };
                    result.queries = o.queries;
                }
                Err(e) => result.verdict = Err(e),
            }
        } else {
            result.verdict = match t.property {
                Property::Safety => v.check_assertion(&program).map(|o| {
                    result.stats = o.stats;
                    o.reachable
                }),
                Property::Liveness => v.check_liveness(&program).map(|o| {
                    result.stats = o.stats;
                    o.violated
                }),
                Property::DataRaceFreedom => v.check_data_races(&program).map(|o| {
                    result.stats = o.stats;
                    o.violated
                }),
            };
        }
        result.memo_hits = memo.hits();
        result.time = start.elapsed();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Vec<Test> {
        // Small, fast tests with known verdicts: pull the first few
        // figure tests (they carry expectations from the paper).
        gpumc_catalog::figure_tests().into_iter().take(4).collect()
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_ordered(&items, 8, |i, &x| {
            assert_eq!(i, x);
            // Stagger completion so late items finish first.
            if x % 7 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effective_jobs_normalizes_zero_to_all_cores() {
        assert_eq!(effective_jobs(1), 1);
        assert_eq!(effective_jobs(7), 7);
        let all = effective_jobs(0);
        assert!(all >= 1, "zero means every available core");
        assert_eq!(
            all,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_ordered(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map_ordered(&[7u32], 0, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn suite_results_follow_input_order() {
        let tests = tiny_suite();
        let report = SuiteRunner::new(SuiteConfig {
            jobs: 4,
            ..SuiteConfig::default()
        })
        .run(&tests);
        let names: Vec<_> = report.results.iter().map(|r| r.name.as_str()).collect();
        let expect: Vec<_> = tests.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, expect);
        assert!(report.cpu >= report.wall || report.jobs == 1 || report.results.len() <= 1);
    }

    #[test]
    fn suite_table_is_identical_across_job_counts() {
        // The determinism contract: only verdicts and static sizes are
        // rendered, so -j1 and -j8 agree byte for byte.
        let tests = tiny_suite();
        let run = |jobs| {
            SuiteRunner::new(SuiteConfig {
                jobs,
                ..SuiteConfig::default()
            })
            .run(&tests)
            .render_table()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn thorough_mode_answers_secondary_from_one_session() {
        let tests: Vec<Test> = tiny_suite()
            .into_iter()
            .filter(|t| t.property == Property::Safety)
            .collect();
        assert!(!tests.is_empty());
        let report = SuiteRunner::new(SuiteConfig {
            jobs: 2,
            thorough: true,
            ..SuiteConfig::default()
        })
        .run(&tests);
        for r in &report.results {
            assert!(r.secondary.is_some(), "{} has a secondary verdict", r.name);
            // One incremental session answered both properties: no
            // re-encoding happened, and the per-query deltas were kept.
            assert!(
                r.queries.len() >= 2,
                "{} recorded its assertion + liveness queries",
                r.name
            );
            assert_eq!(r.queries[0].label, "assertion");
            assert_eq!(r.queries[1].label, "liveness");
        }
    }

    #[test]
    fn thorough_and_plain_runs_agree_on_verdicts() {
        // The differential contract at suite level: the incremental
        // session path (thorough) and the fresh single-property path must
        // produce identical primary verdicts.
        let tests = tiny_suite();
        let run = |thorough| {
            SuiteRunner::new(SuiteConfig {
                jobs: 2,
                thorough,
                ..SuiteConfig::default()
            })
            .run(&tests)
        };
        let plain = run(false);
        let thorough = run(true);
        for (p, t) in plain.results.iter().zip(&thorough.results) {
            assert_eq!(
                p.verdict.as_ref().ok(),
                t.verdict.as_ref().ok(),
                "{} verdict differs between fresh and incremental paths",
                p.name
            );
        }
    }

    #[test]
    fn expectations_from_the_catalog_hold() {
        let tests = tiny_suite();
        let report = SuiteRunner::new(SuiteConfig::default()).run(&tests);
        if let Some(r) = report.failures().next() {
            panic!("{} failed: {:?}", r.name, r.verdict);
        }
        assert_eq!(report.passed(), tests.len());
    }
}
